//! Byzantine-robust sharded training (ROADMAP item 2): the production-scale
//! story where training data arrives sharded across N logical workers and a
//! fault afflicts *one shard*, not the monolithic corpus.
//!
//! Each worker holds one shard of a [`LabeledDataset`] partition and
//! computes per-batch gradients on its own model replica; a pluggable
//! [`Aggregator`] combines the per-worker gradients into one update that
//! every replica applies, so replicas stay bit-identical — synchronous
//! data-parallel SGD. The robust aggregators ([`AggregatorKind::TrimmedMean`],
//! [`AggregatorKind::Median`], [`AggregatorKind::Ctma`] after Dahan & Levy's
//! CTMA with double momentum) bound the damage a faulty shard's gradients
//! can do; [`crate::detect::localize_faulty_shards`] then *fingers* the
//! shard FedDebug-style from per-shard held-out disagreement.
//!
//! # Determinism
//!
//! Every aggregator reduces in a fixed order regardless of worker
//! scheduling: per coordinate, the per-worker values are sorted with
//! [`f32::total_cmp`] and summed in ascending order. This makes every
//! aggregator permutation-invariant over worker order, makes
//! `TrimmedMean { f: 0 }` bit-identical to `Mean`, and — because workers
//! are collected indexed by shard before reduction — makes results
//! byte-identical across `TDFM_THREADS` like the rest of the repo.

use crate::experiment::run_indexed;
use crate::metrics::{accuracy, accuracy_delta, ConfidenceInterval};
use crate::technique::EVAL_BATCH;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use tdfm_data::{DatasetKind, LabeledDataset, Scale};
use tdfm_inject::{ProvenanceBuilder, ShardFaultPlan};
use tdfm_json::json_struct;
use tdfm_nn::loss::{CrossEntropy, Target};
use tdfm_nn::models::{ModelConfig, ModelKind};
use tdfm_nn::optim::{Optimizer, Sgd};
use tdfm_nn::trainer::{export_batch_gradients, load_gradients, FitConfig};
use tdfm_nn::Network;
use tdfm_obs::{event, span, Level, ManifestCell, ProvenanceRecord, RunManifest};
use tdfm_tensor::parallel::num_threads;
use tdfm_tensor::rng::Rng;
use tdfm_tensor::Tensor;

/// Cached handle on the global trimmed-contribution counter: one increment
/// per worker contribution an aggregator excluded from a round's update.
fn trims_counter() -> &'static tdfm_obs::metrics::Counter {
    static HANDLE: OnceLock<Arc<tdfm_obs::metrics::Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| tdfm_obs::global().counter("aggregator_trims"))
}

/// Cached handle on the non-finite worker-drop counter (the distributed
/// analogue of PR 5's drop-batch semantics).
fn drops_counter() -> &'static tdfm_obs::metrics::Counter {
    static HANDLE: OnceLock<Arc<tdfm_obs::metrics::Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| tdfm_obs::global().counter("shard_worker_drops"))
}

/// One worker's gradient contribution to a round: its shard index plus its
/// per-parameter gradient tensors (in `Network::params_mut` order).
#[derive(Debug)]
pub struct WorkerGrads<'a> {
    /// The contributing worker's shard index.
    pub worker: usize,
    /// The worker's per-parameter gradients.
    pub grads: &'a [Tensor],
}

/// What an aggregation round produced.
#[derive(Debug)]
pub struct Aggregated {
    /// The combined per-parameter gradients.
    pub grads: Vec<Tensor>,
    /// Worker contributions the aggregator excluded this round (trimmed
    /// extremes, non-median workers, CTMA outliers).
    pub trimmed: usize,
}

/// A gradient-combining rule for synchronous data-parallel training.
///
/// # Contract
///
/// Implementations must be **permutation-invariant over worker order** and
/// reduce in a fixed order (sort per-coordinate values with
/// [`f32::total_cmp`], sum ascending — see [`invariant_mean`]): the trainer
/// collects contributions indexed by shard, but byte-identical results
/// across thread counts require the reduction itself to be order-free.
/// Aggregators may keep per-worker state across rounds (CTMA's momentum);
/// state must be keyed by [`WorkerGrads::worker`], never by slice position.
pub trait Aggregator: Send {
    /// Display name, e.g. `"TrimmedMean(f=1)"`.
    fn name(&self) -> String;

    /// Combines the surviving workers' gradients into one update.
    ///
    /// `workers` holds the finite-gradient contributions of a round in
    /// ascending shard order (the trainer screens non-finite workers out
    /// before aggregation and counts them separately).
    fn aggregate(&mut self, workers: &[WorkerGrads<'_>]) -> Aggregated;

    /// `true` when the aggregator's output is already a momentum estimate
    /// (CTMA): the trainer then runs the server optimiser with zero
    /// momentum, because stacking a second 0.9-EMA on top of the worker
    /// EMA compounds to ~0.99 effective momentum and destabilises the
    /// study's small models.
    fn replaces_server_momentum(&self) -> bool {
        false
    }
}

/// Sorts each coordinate's per-worker values and folds them in ascending
/// order — the fixed reduction order every aggregator shares. `reduce` sees
/// the sorted values and returns the combined coordinate.
fn sorted_reduce(sets: &[&[Tensor]], reduce: impl Fn(&[f32]) -> f32) -> Vec<Tensor> {
    let n = sets.len();
    assert!(n > 0, "cannot aggregate zero workers");
    let mut buf = vec![0.0f32; n];
    (0..sets[0].len())
        .map(|p| {
            let mut out = Tensor::zeros(sets[0][p].shape().dims());
            for (c, slot) in out.data_mut().iter_mut().enumerate() {
                for (v, set) in buf.iter_mut().zip(sets) {
                    *v = set[p].data()[c];
                }
                buf.sort_unstable_by(|a, b| a.total_cmp(b));
                *slot = reduce(&buf);
            }
            out
        })
        .collect()
}

/// Sums already-sorted values in ascending order and divides — the
/// invariant mean both `Mean` and `TrimmedMean { f: 0 }` bottom out in,
/// which is what makes them bit-identical.
fn invariant_mean(sorted: &[f32]) -> f32 {
    sorted.iter().fold(0.0f32, |acc, &v| acc + v) / sorted.len() as f32
}

fn grad_sets<'a>(workers: &'a [WorkerGrads<'_>]) -> Vec<&'a [Tensor]> {
    workers.iter().map(|w| w.grads).collect()
}

/// Plain coordinate-wise mean.
#[derive(Debug, Default)]
pub struct Mean;

impl Aggregator for Mean {
    fn name(&self) -> String {
        "Mean".to_string()
    }

    fn aggregate(&mut self, workers: &[WorkerGrads<'_>]) -> Aggregated {
        Aggregated {
            grads: sorted_reduce(&grad_sets(workers), invariant_mean),
            trimmed: 0,
        }
    }
}

/// Coordinate-wise trimmed mean: drops the `f` lowest and `f` highest
/// values per coordinate, then averages the rest. `f` is clamped so at
/// least one value survives.
#[derive(Debug)]
pub struct TrimmedMean {
    /// Per-coordinate trim width on each side.
    pub f: usize,
}

impl Aggregator for TrimmedMean {
    fn name(&self) -> String {
        format!("TrimmedMean(f={})", self.f)
    }

    fn aggregate(&mut self, workers: &[WorkerGrads<'_>]) -> Aggregated {
        let n = workers.len();
        let t = self.f.min((n - 1) / 2);
        Aggregated {
            grads: sorted_reduce(&grad_sets(workers), |sorted| {
                invariant_mean(&sorted[t..sorted.len() - t])
            }),
            trimmed: 2 * t,
        }
    }
}

/// Coordinate-wise median (mean of the two middle values for even worker
/// counts).
#[derive(Debug, Default)]
pub struct Median;

impl Aggregator for Median {
    fn name(&self) -> String {
        "Median".to_string()
    }

    fn aggregate(&mut self, workers: &[WorkerGrads<'_>]) -> Aggregated {
        let n = workers.len();
        let grads = sorted_reduce(&grad_sets(workers), |sorted| {
            let m = sorted.len() / 2;
            if sorted.len() % 2 == 1 {
                sorted[m]
            } else {
                (sorted[m - 1] + sorted[m]) / 2.0
            }
        });
        Aggregated {
            grads,
            trimmed: n - if n % 2 == 1 { 1 } else { 2 },
        }
    }
}

/// Centered Trimmed Meta Aggregator (Dahan & Levy 2024) with worker-side
/// momentum. The momenta are used twice — once to pick the trimmed center
/// and the surviving workers, once as the update direction itself (the
/// paper's double-momentum scheme); the trainer therefore runs the server
/// optimiser without its own momentum (see
/// [`Aggregator::replaces_server_momentum`]).
///
/// Each worker smooths its gradient stream into a heavy-ball momentum
/// `m_w ← β·m_w + g_w` — the same accumulator form (and so the same
/// update magnitude) as the server optimiser's own momentum, moved to
/// the worker side where it can also absorb per-shard gradient noise
/// before the Byzantine filter sees it. The round's *center* is the
/// coordinate-wise trimmed mean of the momenta, and the `n − f` momenta
/// closest to the center (squared L2, accumulated in f64 coordinate
/// order) are averaged into the update. Distance ties break by ascending
/// shard index.
#[derive(Debug)]
pub struct Ctma {
    /// Number of suspect workers to exclude.
    pub f: usize,
    /// Worker-side momentum coefficient.
    pub beta: f32,
    momentum: Vec<Option<Vec<Tensor>>>,
}

impl Ctma {
    /// Creates a CTMA aggregator tolerating `f` faulty workers with the
    /// conventional β = 0.9 worker momentum.
    pub fn new(f: usize) -> Self {
        Self {
            f,
            beta: 0.9,
            momentum: Vec::new(),
        }
    }
}

impl Aggregator for Ctma {
    fn name(&self) -> String {
        format!("Ctma(f={})", self.f)
    }

    fn replaces_server_momentum(&self) -> bool {
        true
    }

    fn aggregate(&mut self, workers: &[WorkerGrads<'_>]) -> Aggregated {
        let n = workers.len();
        // Update each present worker's momentum, keyed by shard index so
        // state survives rounds where some workers were screened out.
        for w in workers {
            if self.momentum.len() <= w.worker {
                self.momentum.resize_with(w.worker + 1, || None);
            }
            match &mut self.momentum[w.worker] {
                Some(m) => {
                    for (mt, gt) in m.iter_mut().zip(w.grads) {
                        for (mv, &gv) in mt.data_mut().iter_mut().zip(gt.data()) {
                            *mv = self.beta * *mv + gv;
                        }
                    }
                }
                slot @ None => {
                    *slot = Some(w.grads.to_vec());
                }
            }
        }
        let momenta: Vec<&[Tensor]> = workers
            .iter()
            .map(|w| {
                self.momentum[w.worker]
                    .as_deref()
                    .expect("momentum initialised above")
            })
            .collect();
        let t = self.f.min((n - 1) / 2);
        let center = sorted_reduce(&momenta, |sorted| {
            invariant_mean(&sorted[t..sorted.len() - t])
        });
        // Squared distances to the center, accumulated in f64 coordinate
        // order — the same fixed sequence for every worker permutation.
        let mut ranked: Vec<(f64, usize, usize)> = workers
            .iter()
            .enumerate()
            .map(|(slot, w)| {
                let dist: f64 = momenta[slot]
                    .iter()
                    .zip(&center)
                    .map(|(m, c)| {
                        m.data()
                            .iter()
                            .zip(c.data())
                            .map(|(&a, &b)| {
                                let d = (a - b) as f64;
                                d * d
                            })
                            .sum::<f64>()
                    })
                    .sum();
                (dist, w.worker, slot)
            })
            .collect();
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let keep = n - self.f.min(n - 1);
        let selected: Vec<&[Tensor]> = ranked[..keep].iter().map(|&(_, _, s)| momenta[s]).collect();
        Aggregated {
            grads: sorted_reduce(&selected, invariant_mean),
            trimmed: n - keep,
        }
    }
}

/// The aggregator menu, as named in sweeps and harness output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregatorKind {
    /// Plain mean — the non-robust baseline.
    Mean,
    /// Coordinate-wise trimmed mean with trim width `f`.
    TrimmedMean {
        /// Per-side trim width.
        f: usize,
    },
    /// Coordinate-wise median.
    Median,
    /// CTMA with double momentum, excluding `f` suspects.
    Ctma {
        /// Number of suspects excluded per round.
        f: usize,
    },
}

impl AggregatorKind {
    /// The harness line-up: the non-robust baseline plus the three robust
    /// aggregators at `f = 1`.
    pub fn standard_set() -> Vec<AggregatorKind> {
        vec![
            AggregatorKind::Mean,
            AggregatorKind::TrimmedMean { f: 1 },
            AggregatorKind::Median,
            AggregatorKind::Ctma { f: 1 },
        ]
    }

    /// Display name (also the manifest cell's technique field).
    pub fn name(self) -> String {
        match self {
            AggregatorKind::Mean => "Mean".to_string(),
            AggregatorKind::TrimmedMean { f } => format!("TrimmedMean(f={f})"),
            AggregatorKind::Median => "Median".to_string(),
            AggregatorKind::Ctma { f } => format!("Ctma(f={f})"),
        }
    }

    /// Builds a fresh aggregator instance.
    pub fn build(self) -> Box<dyn Aggregator> {
        match self {
            AggregatorKind::Mean => Box::new(Mean),
            AggregatorKind::TrimmedMean { f } => Box::new(TrimmedMean { f }),
            AggregatorKind::Median => Box::new(Median),
            AggregatorKind::Ctma { f } => Box::new(Ctma::new(f)),
        }
    }
}

/// What a sharded training run produced.
#[derive(Debug, Clone)]
pub struct ShardedFitReport {
    /// Mean per-round training loss per epoch (over surviving workers).
    pub epoch_losses: Vec<f32>,
    /// Synchronous aggregation rounds run.
    pub rounds: usize,
    /// Worker contributions the aggregator excluded, summed over rounds.
    pub trimmed_contributions: u64,
    /// Worker contributions dropped for non-finite gradients before
    /// aggregation (PR 5's drop-batch semantics, per worker per round).
    pub dropped_contributions: u64,
    /// Rounds skipped entirely because no finite contribution survived.
    pub skipped_rounds: usize,
    /// Cumulative gradient-computation wall clock per worker.
    pub worker_walls: Vec<Duration>,
}

/// Per-worker mutable state: a model replica, its optimiser (replicas step
/// in lockstep on the same aggregated gradient, so their optimiser states
/// stay identical), its shard's shuffle stream, and its wall clock.
struct WorkerState {
    net: Network,
    opt: Sgd,
    order: Vec<usize>,
    rng: Rng,
    wall: Duration,
}

/// Trains one logical model across `shards.len()` data-parallel workers
/// with synchronous robust gradient aggregation, returning the final model
/// (worker replicas are bit-identical; worker 0's is returned).
///
/// Workers fan out over threads through the same two-level budget as the
/// grid runner: spawned worker threads re-establish `with_inner_threads`
/// so a run inside a `Runner::run_grid` cell divides the cell's budget
/// instead of multiplying `TDFM_THREADS`. Per round, each worker exports
/// gradients for one mini-batch of its shard ([`export_batch_gradients`]);
/// non-finite contributions are dropped, counted and traced; the survivors
/// are aggregated in fixed order, globally clipped, and applied by every
/// replica.
///
/// # Panics
///
/// Panics if `shards` is empty, any shard is smaller than 1, or the fit
/// config has zero epochs/batch size.
pub fn fit_sharded(
    model: ModelKind,
    config: &ModelConfig,
    shards: &[LabeledDataset],
    cfg: &FitConfig,
    aggregator: &mut dyn Aggregator,
) -> (Network, ShardedFitReport) {
    assert!(!shards.is_empty(), "need at least one shard");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    assert!(cfg.epochs > 0, "must train for at least one epoch");
    let n = shards.len();
    let name = aggregator.name();
    let server_momentum = if aggregator.replaces_server_momentum() {
        0.0
    } else {
        cfg.momentum
    };
    let _span = span!("fit_sharded", workers = n, epochs = cfg.epochs);
    let states: Vec<Mutex<WorkerState>> = shards
        .iter()
        .enumerate()
        .map(|(w, shard)| {
            Mutex::new(WorkerState {
                net: model.build(config),
                opt: Sgd::new(cfg.lr, server_momentum, cfg.weight_decay),
                order: (0..shard.len()).collect(),
                rng: Rng::seed_from(cfg.shuffle_seed ^ 0x5_4A2D).derive(w as u64),
                wall: Duration::ZERO,
            })
        })
        .collect();
    // Shards differ by at most one sample; the longest shard sets the
    // round count and shorter shards wrap around their batch cycle.
    let steps_per_epoch = shards
        .iter()
        .map(|s| s.len().div_ceil(cfg.batch_size))
        .max()
        .expect("non-empty shards");
    let mut lr = cfg.lr;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut rounds = 0usize;
    let mut trimmed_contributions = 0u64;
    let mut dropped_contributions = 0u64;
    let mut skipped_rounds = 0usize;

    for epoch in 0..cfg.epochs {
        for state in &states {
            let mut st = state.lock().expect("worker state poisoned");
            let mut order = std::mem::take(&mut st.order);
            st.rng.shuffle(&mut order);
            st.order = order;
        }
        let mut epoch_loss = 0.0f64;
        let mut epoch_rounds = 0usize;
        for step in 0..steps_per_epoch {
            // Phase 1: every worker computes gradients for its own batch,
            // in parallel under the two-level thread budget.
            let exports = run_indexed(n, |w| {
                let mut st = states[w].lock().expect("worker state poisoned");
                let shard = &shards[w];
                let batches = shard.len().div_ceil(cfg.batch_size);
                let b = step % batches;
                let lo = b * cfg.batch_size;
                let hi = (lo + cfg.batch_size).min(shard.len());
                let indices = st.order[lo..hi].to_vec();
                // tdfm-lint: allow(lock-held-across-call, st is this worker's private state lock; shard accessors and gather_rows take no lock)
                let images = shard.images().gather_rows(&indices);
                // tdfm-lint: allow(lock-held-across-call, labels() is a lock-free slice accessor on the worker's own shard)
                let labels: Vec<u32> = indices.iter().map(|&i| shard.labels()[i]).collect();
                let started = Instant::now();
                // tdfm-lint: allow(lock-held-across-call, the backward pass over st.net is exactly what the per-worker lock protects; no callee takes a lock)
                let export = export_batch_gradients(
                    &mut st.net,
                    &CrossEntropy,
                    &images,
                    &Target::Hard(&labels),
                );
                st.wall += started.elapsed();
                export
            });
            // Phase 2: screen, aggregate in ascending-shard order, clip.
            let survivors: Vec<WorkerGrads<'_>> = exports
                .iter()
                .enumerate()
                .filter_map(|(w, e)| {
                    if e.is_finite() {
                        Some(WorkerGrads {
                            worker: w,
                            grads: &e.grads,
                        })
                    } else {
                        dropped_contributions += 1;
                        drops_counter().inc();
                        event!(
                            Level::Debug,
                            "shard_worker_drop",
                            aggregator = name.as_str(),
                            worker = w,
                            epoch = epoch,
                            step = step,
                            loss = e.loss,
                            grad_norm = e.grad_norm
                        );
                        None
                    }
                })
                .collect();
            if survivors.is_empty() {
                skipped_rounds += 1;
                event!(
                    Level::Debug,
                    "sharded_round_skip",
                    aggregator = name.as_str(),
                    epoch = epoch,
                    step = step
                );
                continue;
            }
            let round_loss = survivors
                .iter()
                .map(|s| exports[s.worker].loss as f64)
                .sum::<f64>()
                / survivors.len() as f64;
            let aggregated = aggregator.aggregate(&survivors);
            trimmed_contributions += aggregated.trimmed as u64;
            trims_counter().add(aggregated.trimmed as u64);
            let mut grads = aggregated.grads;
            let norm = grads
                .iter()
                .map(|g| g.data().iter().map(|v| v * v).sum::<f32>())
                .sum::<f32>()
                .sqrt();
            if !norm.is_finite() {
                // An aggregate can only go non-finite by overflow of finite
                // contributions; drop the round like a non-finite batch.
                skipped_rounds += 1;
                event!(
                    Level::Debug,
                    "sharded_round_skip",
                    aggregator = name.as_str(),
                    epoch = epoch,
                    step = step,
                    grad_norm = norm
                );
                continue;
            }
            if cfg.grad_clip > 0.0 && norm > cfg.grad_clip {
                let scale = cfg.grad_clip / norm;
                for g in &mut grads {
                    g.scale(scale);
                }
            }
            // Phase 3: every replica applies the same update in lockstep.
            run_indexed(n, |w| {
                let mut st = states[w].lock().expect("worker state poisoned");
                // Each replica owns an identical optimiser fed identical
                // gradients, so no weight broadcast is needed.
                let WorkerState { net, opt, .. } = &mut *st;
                // tdfm-lint: allow(lock-held-across-call, load_gradients only writes the locked worker's own net; no lock below)
                load_gradients(net, &grads);
                // tdfm-lint: allow(lock-held-across-call, the optimiser step mutates the locked worker's own params; no lock below)
                opt.step(&mut net.params_mut());
            });
            epoch_loss += round_loss;
            epoch_rounds += 1;
            rounds += 1;
        }
        epoch_losses.push((epoch_loss / epoch_rounds.max(1) as f64) as f32);
        lr *= cfg.lr_decay;
        for state in &states {
            let mut st = state.lock().expect("worker state poisoned");
            st.opt.set_learning_rate(lr);
        }
        event!(
            Level::Debug,
            "sharded_epoch",
            aggregator = name.as_str(),
            epoch = epoch,
            loss = *epoch_losses.last().expect("pushed above"),
            lr = lr
        );
    }

    let mut worker_walls = Vec::with_capacity(n);
    let mut final_net = None;
    for (w, state) in states.into_iter().enumerate() {
        let st = state.into_inner().expect("worker state poisoned");
        tdfm_obs::global()
            .histogram("shard_worker_seconds")
            .record(st.wall);
        worker_walls.push(st.wall);
        if w == 0 {
            final_net = Some(st.net);
        }
    }
    (
        final_net.expect("worker 0 exists"),
        ShardedFitReport {
            epoch_losses,
            rounds,
            trimmed_contributions,
            dropped_contributions,
            skipped_rounds,
            worker_walls,
        },
    )
}

/// A shard-fault sweep: every listed aggregator scored against every listed
/// shard-fault plan, sharing one clean reference fit per (aggregator,
/// repetition).
#[derive(Debug, Clone)]
pub struct ShardFaultSweep {
    /// Dataset sharded across workers.
    pub dataset: DatasetKind,
    /// Architecture under study.
    pub model: ModelKind,
    /// Aggregators to score.
    pub aggregators: Vec<AggregatorKind>,
    /// Shard-fault plans to score each aggregator against (include
    /// [`ShardFaultPlan::clean`] for the zero-faulty-shard column).
    pub plans: Vec<ShardFaultPlan>,
    /// Number of logical workers / shards.
    pub workers: usize,
    /// Experiment scale.
    pub scale: Scale,
    /// Repetitions per (aggregator, plan) cell.
    pub repetitions: usize,
    /// Base seed; repetition `r` derives its own seed exactly like the
    /// other runners.
    pub seed: u64,
}

/// Raw outcome of one repetition of one (aggregator, plan) cell.
#[derive(Debug, Clone)]
pub struct ShardFaultRepetition {
    /// Test accuracy of the clean-reference sharded fit.
    pub clean_accuracy: f32,
    /// Test accuracy under the shard fault.
    pub faulty_accuracy: f32,
    /// Accuracy delta against the clean reference's predictions.
    pub accuracy_delta: f32,
    /// The localizer's top-ranked suspect shard.
    pub suspect: u64,
    /// The top suspect's disagreement score.
    pub suspect_score: f32,
    /// `true` when the top suspect is the injected shard (always `false`
    /// for clean plans — there is nothing to find).
    pub localizer_hit: bool,
    /// Worker contributions the aggregator trimmed during the fit.
    pub trimmed: u64,
    /// Worker contributions dropped for non-finite gradients.
    pub dropped: u64,
}

json_struct!(ShardFaultRepetition {
    clean_accuracy,
    faulty_accuracy,
    accuracy_delta,
    suspect,
    suspect_score,
    localizer_hit,
    trimmed,
    dropped
});

/// Aggregated outcome of one (aggregator, plan) cell.
#[derive(Debug, Clone)]
pub struct ShardFaultResult {
    /// Dataset sharded across workers.
    pub dataset: DatasetKind,
    /// Architecture under study.
    pub model: ModelKind,
    /// Aggregator name (see [`AggregatorKind::name`]).
    pub aggregator: String,
    /// Number of logical workers / shards.
    pub workers: usize,
    /// The shard-fault plan's label (see [`ShardFaultPlan::label`]).
    pub fault_label: String,
    /// Experiment scale.
    pub scale: Scale,
    /// Base seed of the sweep.
    pub seed: u64,
    /// Per-repetition raw results.
    pub repetitions: Vec<ShardFaultRepetition>,
    /// Clean-reference accuracy mean and 95% CI.
    pub clean_accuracy: ConfidenceInterval,
    /// Faulted accuracy mean and CI.
    pub faulty_accuracy: ConfidenceInterval,
    /// AD mean and CI.
    pub ad: ConfidenceInterval,
    /// Repetitions whose top-ranked suspect was the injected shard.
    pub localization_hits: usize,
    /// Wall-clock spent on this cell's faulted fits, seconds.
    pub wall_seconds: f64,
}

json_struct!(ShardFaultResult {
    dataset,
    model,
    aggregator,
    workers,
    fault_label,
    scale,
    seed,
    repetitions,
    clean_accuracy,
    faulty_accuracy,
    ad,
    localization_hits,
    wall_seconds
});

impl ShardFaultResult {
    /// Serialises the result as pretty JSON.
    pub fn to_json(&self) -> String {
        tdfm_json::to_string_pretty(self)
    }

    /// Zeroes the wall-clock field — everything else is a deterministic
    /// function of the sweep, so normalised results diff byte-for-byte.
    pub fn normalize_timings(&mut self) {
        self.wall_seconds = 0.0;
    }
}

/// Shared hyperparameters of a sweep's sharded fits: the grid trainer's
/// defaults tuned to the per-shard sample count, with the epoch floor
/// keeping the synchronous round count meaningful at tiny scales.
fn sharded_fit_config(scale: Scale, shard_len: usize, seed: u64) -> FitConfig {
    let batch_size = (shard_len / 8).clamp(4, 32).min(shard_len);
    let rounds_per_epoch = shard_len.div_ceil(batch_size).max(1);
    let epochs = scale.epochs().max(160usize.div_ceil(rounds_per_epoch));
    FitConfig {
        epochs,
        batch_size,
        shuffle_seed: seed,
        ..FitConfig::default()
    }
}

/// Splits every (possibly faulted) shard into a training part and a
/// held-out part the localizer scores on. The held-out slice inherits the
/// shard's label fault — disagreement between the aggregated model and a
/// shard's *own* labels on unseen samples is the localization signal.
fn split_holdouts(shards: &[LabeledDataset]) -> (Vec<LabeledDataset>, Vec<LabeledDataset>) {
    let mut train = Vec::with_capacity(shards.len());
    let mut holdout = Vec::with_capacity(shards.len());
    for shard in shards {
        let k = shard.len() - (shard.len() / 5).max(1);
        let (t, h) = shard.split_at(k.max(1));
        train.push(t);
        holdout.push(h);
    }
    (train, holdout)
}

/// Runs shard-fault sweeps, sharing one clean reference fit per
/// (aggregator, repetition).
///
/// Like the other runners, each instance owns a private metrics registry
/// so fit counters stay exact when several runners share a process;
/// [`ShardFaultRunner::manifest`] snapshots it and merges the process
/// globals (including `aggregator_trims` and `shard_worker_drops`).
#[derive(Default)]
pub struct ShardFaultRunner {
    metrics: tdfm_obs::Registry,
    /// Injection provenance per cell identity (aggregator | fault label):
    /// which shard was hit and where the flipped labels sat, summed over
    /// repetitions.
    provenance: Mutex<BTreeMap<String, ProvenanceBuilder>>,
}

/// The provenance-map key of an (aggregator, plan) cell.
fn cell_key(aggregator: &str, fault_label: &str) -> String {
    format!("{aggregator}|{fault_label}")
}

impl ShardFaultRunner {
    /// Creates a runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sharded fits performed (the sharing regression guard: a
    /// sweep costs `aggregators × repetitions × (1 + faulty plans)` fits —
    /// clean plans reuse the reference fit).
    pub fn sharded_fits(&self) -> usize {
        self.metrics.counter("sharded_fits").get() as usize
    }

    /// Snapshot of this runner's private metrics.
    pub fn metrics_snapshot(&self) -> tdfm_obs::MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Runs the sweep, returning one result per (aggregator, plan) pair in
    /// aggregator-major order.
    ///
    /// Aggregators fan out across worker threads; each sharded fit inside
    /// a cell fans its shard workers out over the cell's inner budget.
    /// Output is deterministic in the sweep's seeds and byte-identical
    /// across `TDFM_THREADS` — see [`ShardFaultResult::normalize_timings`].
    ///
    /// # Panics
    ///
    /// Panics if the sweep has no aggregators, no plans, no repetitions or
    /// fewer than two workers.
    pub fn run_sweep(&self, sweep: &ShardFaultSweep) -> Vec<ShardFaultResult> {
        assert!(!sweep.aggregators.is_empty(), "sweep needs aggregators");
        assert!(!sweep.plans.is_empty(), "sweep needs shard-fault plans");
        assert!(sweep.repetitions > 0, "need at least one repetition");
        assert!(sweep.workers >= 2, "sharded training needs >= 2 workers");
        let per_aggregator = run_indexed(sweep.aggregators.len(), |a| {
            let kind = sweep.aggregators[a];
            let started = Instant::now();
            let results = self.run_aggregator(sweep, kind);
            self.metrics
                .histogram("aggregator_seconds")
                .record(started.elapsed());
            event!(
                Level::Info,
                "shard_fault_progress",
                aggregator = kind.name().as_str(),
                done = a + 1,
                total = sweep.aggregators.len()
            );
            results
        });
        per_aggregator.into_iter().flatten().collect()
    }

    /// Fits the clean reference once per repetition and scores every plan
    /// against it.
    fn run_aggregator(
        &self,
        sweep: &ShardFaultSweep,
        kind: AggregatorKind,
    ) -> Vec<ShardFaultResult> {
        let name = kind.name();
        let mut reps_per_plan: Vec<Vec<ShardFaultRepetition>> =
            vec![Vec::with_capacity(sweep.repetitions); sweep.plans.len()];
        let mut walls = vec![0.0f64; sweep.plans.len()];
        let mut prov_per_plan = vec![ProvenanceBuilder::new(); sweep.plans.len()];
        for r in 0..sweep.repetitions {
            let rep_seed = sweep
                .seed
                .wrapping_add(1 + r as u64)
                .wrapping_mul(0x9E37_79B9);
            let data = sweep.dataset.generate(sweep.scale, rep_seed);
            let shards = data.train.shards(sweep.workers);
            let shard_len = shards[0].len();
            let cfg = sharded_fit_config(sweep.scale, shard_len, rep_seed);
            let (c, h, w) = data.train.image_shape();
            let model_config = ModelConfig {
                in_shape: (c, h, w),
                classes: data.train.classes(),
                width: sweep.scale.model_width(),
                seed: rep_seed,
            };

            // Clean reference: same shards, same seeds, no fault. Shared by
            // every plan of this repetition.
            let (clean_train, clean_holdouts) = split_holdouts(&shards);
            self.metrics.counter("sharded_fits").inc();
            let mut agg = kind.build();
            let (mut clean_net, clean_report) =
                fit_sharded(sweep.model, &model_config, &clean_train, &cfg, agg.as_mut());
            let clean_preds = clean_net.predict(data.test.images(), EVAL_BATCH);
            let clean_accuracy = accuracy(&clean_preds, data.test.labels());

            for (p, plan) in sweep.plans.iter().enumerate() {
                let started = Instant::now();
                let rep = if plan.is_clean() {
                    let loc =
                        crate::detect::localize_faulty_shards(&mut clean_net, &clean_holdouts);
                    ShardFaultRepetition {
                        clean_accuracy,
                        faulty_accuracy: clean_accuracy,
                        accuracy_delta: 0.0,
                        suspect: loc.top() as u64,
                        suspect_score: loc.scores[loc.top()],
                        localizer_hit: false,
                        trimmed: clean_report.trimmed_contributions,
                        dropped: clean_report.dropped_contributions,
                    }
                } else {
                    let inject_seed = sweep.seed ^ rep_seed ^ ((p as u64) << 32);
                    let (faulty_shards, inj_report) = plan.apply(&shards, inject_seed);
                    prov_per_plan[p].extend(&inj_report.records);
                    let (faulty_train, faulty_holdouts) = split_holdouts(&faulty_shards);
                    self.metrics.counter("sharded_fits").inc();
                    let mut agg = kind.build();
                    let (mut net, report) = fit_sharded(
                        sweep.model,
                        &model_config,
                        &faulty_train,
                        &cfg,
                        agg.as_mut(),
                    );
                    let preds = net.predict(data.test.images(), EVAL_BATCH);
                    let loc = crate::detect::localize_faulty_shards(&mut net, &faulty_holdouts);
                    ShardFaultRepetition {
                        clean_accuracy,
                        faulty_accuracy: accuracy(&preds, data.test.labels()),
                        accuracy_delta: accuracy_delta(&clean_preds, &preds, data.test.labels()),
                        suspect: loc.top() as u64,
                        suspect_score: loc.scores[loc.top()],
                        localizer_hit: loc.top() == plan.shard,
                        trimmed: report.trimmed_contributions,
                        dropped: report.dropped_contributions,
                    }
                };
                walls[p] += started.elapsed().as_secs_f64();
                reps_per_plan[p].push(rep);
            }
        }
        {
            let mut provenance = self.provenance.lock().expect("provenance lock poisoned");
            for (plan, prov) in sweep.plans.iter().zip(&prov_per_plan) {
                if !prov.is_empty() {
                    provenance
                        .entry(cell_key(&name, &plan.label()))
                        .or_default()
                        .extend(&prov.records());
                }
            }
        }
        sweep
            .plans
            .iter()
            .zip(reps_per_plan)
            .zip(walls)
            .map(|((plan, reps), wall_seconds)| {
                let clean: Vec<f32> = reps.iter().map(|r| r.clean_accuracy).collect();
                let faulty: Vec<f32> = reps.iter().map(|r| r.faulty_accuracy).collect();
                let ad: Vec<f32> = reps.iter().map(|r| r.accuracy_delta).collect();
                let localization_hits = reps.iter().filter(|r| r.localizer_hit).count();
                ShardFaultResult {
                    dataset: sweep.dataset,
                    model: sweep.model,
                    aggregator: name.clone(),
                    workers: sweep.workers,
                    fault_label: plan.label(),
                    scale: sweep.scale,
                    seed: sweep.seed,
                    clean_accuracy: ConfidenceInterval::t95(&clean),
                    faulty_accuracy: ConfidenceInterval::t95(&faulty),
                    ad: ConfidenceInterval::t95(&ad),
                    localization_hits,
                    repetitions: reps,
                    wall_seconds,
                }
            })
            .collect()
    }

    /// Builds the run manifest for a batch of sweep results: one
    /// [`ManifestCell`] per (aggregator, plan) cell (the aggregator rides
    /// in the technique field) plus this runner's metrics merged with the
    /// process-global registry, so `tdfm report` reads it like every other
    /// manifest.
    pub fn manifest(&self, name: &str, results: &[ShardFaultResult]) -> RunManifest {
        let scale = match results {
            [] => "-".to_string(),
            [first, rest @ ..] => {
                if rest.iter().any(|r| r.scale != first.scale) {
                    "mixed".to_string()
                } else {
                    first.scale.name().to_string()
                }
            }
        };
        let mut manifest = RunManifest::new(name, scale, num_threads());
        manifest.cells = results
            .iter()
            .enumerate()
            .map(|(index, result)| ManifestCell {
                index,
                dataset: result.dataset.name().to_string(),
                model: result.model.name().to_string(),
                technique: result.aggregator.clone(),
                fault: result.fault_label.clone(),
                scale: result.scale.name().to_string(),
                repetitions: result.repetitions.len(),
                seed: result.seed,
                wall_seconds: result.wall_seconds,
            })
            .collect();
        let provenance = self.provenance.lock().expect("provenance lock poisoned");
        for (index, result) in results.iter().enumerate() {
            // tdfm-lint: allow(lock-held-across-call, cell_key is a pure string formatter)
            let Some(builder) = provenance.get(&cell_key(&result.aggregator, &result.fault_label))
            else {
                continue;
            };
            // tdfm-lint: allow(lock-held-across-call, records() clones out of the builder without taking any lock)
            for r in builder.records() {
                manifest.provenance.push(ProvenanceRecord {
                    cell: index,
                    source: "data".to_string(),
                    kind: r.kind,
                    target: r.target,
                    bit_lo: r.bit_lo,
                    bit_hi: r.bit_hi,
                    bucket: r.bucket,
                    count: r.count,
                    ad_mean: result.ad.mean as f64,
                });
            }
        }
        drop(provenance);
        let mut metrics = self.metrics.snapshot();
        metrics.merge(&tdfm_obs::global().snapshot());
        manifest.metrics = metrics;
        manifest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tdfm_tensor::parallel::with_inner_threads;

    /// Synthetic per-worker gradients: two tensors per worker, values drawn
    /// from a seeded normal stream.
    fn synth_grads(workers: usize, seed: u64) -> Vec<Vec<Tensor>> {
        let mut rng = Rng::seed_from(seed);
        (0..workers)
            .map(|_| {
                vec![
                    Tensor::from_vec((0..6).map(|_| rng.normal()).collect(), &[2, 3]),
                    Tensor::from_vec((0..4).map(|_| rng.normal()).collect(), &[4]),
                ]
            })
            .collect()
    }

    fn as_worker_grads(grads: &[Vec<Tensor>]) -> Vec<WorkerGrads<'_>> {
        grads
            .iter()
            .enumerate()
            .map(|(worker, g)| WorkerGrads { worker, grads: g })
            .collect()
    }

    fn bits(tensors: &[Tensor]) -> Vec<Vec<u32>> {
        tensors
            .iter()
            .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn every_aggregator_is_permutation_invariant_over_worker_order() {
        let kinds = AggregatorKind::standard_set();
        // Three rounds so CTMA's per-worker momentum is exercised too.
        let rounds: Vec<Vec<Vec<Tensor>>> =
            (0..3).map(|r| synth_grads(5, 100 + r as u64)).collect();
        // An adversarial shuffle of slice positions (worker ids ride along).
        let perm = [3usize, 0, 4, 1, 2];
        for kind in kinds {
            let mut forward = kind.build();
            let mut shuffled = kind.build();
            for round in &rounds {
                let ordered = as_worker_grads(round);
                let permuted: Vec<WorkerGrads<'_>> = perm
                    .iter()
                    .map(|&i| WorkerGrads {
                        worker: i,
                        grads: &round[i],
                    })
                    .collect();
                let a = forward.aggregate(&ordered);
                let b = shuffled.aggregate(&permuted);
                assert_eq!(
                    bits(&a.grads),
                    bits(&b.grads),
                    "{} is order-sensitive",
                    kind.name()
                );
                assert_eq!(a.trimmed, b.trimmed);
            }
        }
    }

    #[test]
    fn trimmed_mean_with_zero_f_equals_mean_bit_exactly() {
        let grads = synth_grads(6, 7);
        let workers = as_worker_grads(&grads);
        let mean = Mean.aggregate(&workers);
        let trimmed = TrimmedMean { f: 0 }.aggregate(&workers);
        assert_eq!(bits(&mean.grads), bits(&trimmed.grads));
        assert_eq!(trimmed.trimmed, 0);
    }

    #[test]
    fn robust_aggregators_bound_a_byzantine_worker() {
        // One worker reports a huge gradient; the robust rules must stay
        // near the honest consensus while the mean is dragged away.
        let mut grads = synth_grads(5, 8);
        for t in &mut grads[4] {
            for v in t.data_mut() {
                *v = 1000.0;
            }
        }
        let workers = as_worker_grads(&grads);
        let honest = as_worker_grads(&grads[..4]);
        let honest_mean = Mean.aggregate(&honest).grads;
        let mean = Mean.aggregate(&workers).grads;
        let tm = TrimmedMean { f: 1 }.aggregate(&workers);
        let med = Median.aggregate(&workers).grads;
        let ctma = Ctma::new(1).aggregate(&workers);
        let max_dev = |a: &[Tensor], b: &[Tensor]| {
            a.iter()
                .zip(b)
                .flat_map(|(x, y)| x.data().iter().zip(y.data()).map(|(p, q)| (p - q).abs()))
                .fold(0.0f32, f32::max)
        };
        assert!(max_dev(&mean, &honest_mean) > 50.0, "mean must be dragged");
        assert!(max_dev(&tm.grads, &honest_mean) < 2.0);
        assert!(max_dev(&med, &honest_mean) < 2.0);
        // CTMA averages momenta (scaled by 1-beta), so compare direction:
        // no coordinate may carry the Byzantine magnitude.
        assert!(
            ctma.grads
                .iter()
                .flat_map(|t| t.data())
                .all(|v| v.abs() < 10.0),
            "CTMA leaked the Byzantine gradient"
        );
        assert_eq!(tm.trimmed, 2);
        assert_eq!(ctma.trimmed, 1);
    }

    fn tiny_shards(workers: usize, seed: u64) -> (Vec<LabeledDataset>, LabeledDataset) {
        // Smoke-scale Pneumonia: 64 training samples, enough for
        // non-degenerate shards and holdouts.
        let tt = DatasetKind::Pneumonia.generate(Scale::Smoke, seed);
        (tt.train.shards(workers), tt.test)
    }

    fn quick_cfg(seed: u64) -> FitConfig {
        FitConfig {
            epochs: 6,
            batch_size: 4,
            shuffle_seed: seed,
            ..FitConfig::default()
        }
    }

    fn tiny_model_config(shards: &[LabeledDataset], seed: u64) -> ModelConfig {
        let (c, h, w) = shards[0].image_shape();
        ModelConfig {
            in_shape: (c, h, w),
            classes: shards[0].classes(),
            width: 2,
            seed,
        }
    }

    #[test]
    fn sharded_training_learns_and_replicas_stay_in_lockstep() {
        let (shards, test) = tiny_shards(4, 20);
        let config = tiny_model_config(&shards, 21);
        let mut agg = Mean;
        let (mut net, report) = fit_sharded(
            ModelKind::ConvNet,
            &config,
            &shards,
            &quick_cfg(21),
            &mut agg,
        );
        assert_eq!(report.epoch_losses.len(), 6);
        assert!(
            report.epoch_losses.last().unwrap() < &report.epoch_losses[0],
            "losses {:?}",
            report.epoch_losses
        );
        assert_eq!(report.rounds, 6 * 4); // 16-sample shards, batch 4
        assert_eq!(report.worker_walls.len(), 4);
        assert_eq!(report.dropped_contributions, 0);
        let acc = accuracy(&net.predict(test.images(), EVAL_BATCH), test.labels());
        assert!(acc > 0.55, "accuracy {acc}");
    }

    #[test]
    fn sharded_training_is_byte_identical_across_thread_budgets() {
        let (shards, _) = tiny_shards(4, 22);
        let config = tiny_model_config(&shards, 23);
        let run = |threads: usize| {
            with_inner_threads(threads, || {
                let mut agg = TrimmedMean { f: 1 };
                let (mut net, report) = fit_sharded(
                    ModelKind::ConvNet,
                    &config,
                    &shards,
                    &quick_cfg(23),
                    &mut agg,
                );
                let weights: Vec<Vec<u32>> = net
                    .params_mut()
                    .iter()
                    .map(|p| p.value.data().iter().map(|v| v.to_bits()).collect())
                    .collect();
                let losses: Vec<u32> = report.epoch_losses.iter().map(|l| l.to_bits()).collect();
                (weights, losses)
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn nan_gradient_shard_is_dropped_not_aggregated() {
        // Shard 2's images carry a NaN, so its every gradient export is
        // non-finite: the trainer must drop that worker's contribution each
        // round (PR 5's drop-batch semantics) and keep the model finite.
        let (mut shards, _) = tiny_shards(4, 24);
        let mut poisoned = shards[2].images().clone();
        for v in poisoned.data_mut() {
            *v = f32::NAN;
        }
        shards[2] = LabeledDataset::new(poisoned, shards[2].labels().to_vec(), shards[2].classes());
        let config = tiny_model_config(&shards, 25);
        let mut agg = Mean;
        let (mut net, report) = fit_sharded(
            ModelKind::ConvNet,
            &config,
            &shards,
            &quick_cfg(25),
            &mut agg,
        );
        assert_eq!(
            report.dropped_contributions as usize, report.rounds,
            "shard 2 must be dropped every round"
        );
        assert_eq!(report.skipped_rounds, 0, "three workers keep training");
        assert!(net
            .params_mut()
            .iter()
            .all(|p| p.value.data().iter().all(|v| v.is_finite())));
    }

    #[test]
    fn shard_worker_fanout_never_exceeds_the_thread_budget() {
        // Regression guard for the two-level budget: shard workers spawned
        // inside a grid cell must divide the cell's `with_inner_threads`
        // budget, not multiply `TDFM_THREADS`.
        with_inner_threads(3, || {
            let live = AtomicUsize::new(0);
            let peak = AtomicUsize::new(0);
            run_indexed(12, |_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                // Inside a worker the residual budget is 3 / 3 = 1: the
                // worker's own parallel tensor ops stay single-threaded.
                assert_eq!(num_threads(), 1);
                std::thread::sleep(Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
            });
            let peak = peak.load(Ordering::SeqCst);
            assert!(peak <= 3, "{peak} live workers exceeded the budget of 3");
        });
    }

    #[test]
    fn localizer_fingers_the_injected_shard() {
        // Seeded end-to-end check: pair-flip every label of shard 1, train
        // with a robust aggregator, and the held-out disagreement ranking
        // must put shard 1 first.
        let (shards, _) = tiny_shards(4, 26);
        let plan = ShardFaultPlan::pair_flip(1, 100.0);
        let (faulty, _) = plan.apply(&shards, 27);
        let (train, holdouts) = split_holdouts(&faulty);
        let config = tiny_model_config(&shards, 27);
        let mut agg = TrimmedMean { f: 1 };
        let (mut net, _) = fit_sharded(
            ModelKind::ConvNet,
            &config,
            &train,
            &quick_cfg(27),
            &mut agg,
        );
        let report = crate::detect::localize_faulty_shards(&mut net, &holdouts);
        assert_eq!(report.top(), 1, "scores {:?}", report.scores);
    }

    fn tiny_sweep(aggregators: Vec<AggregatorKind>, plans: Vec<ShardFaultPlan>) -> ShardFaultSweep {
        ShardFaultSweep {
            dataset: DatasetKind::Pneumonia,
            model: ModelKind::ConvNet,
            aggregators,
            plans,
            workers: 4,
            scale: Scale::Tiny,
            repetitions: 1,
            seed: 33,
        }
    }

    #[test]
    fn sweep_is_aggregator_major_and_shares_clean_fits() {
        let runner = ShardFaultRunner::new();
        let plans = vec![ShardFaultPlan::clean(), ShardFaultPlan::mislabel(1, 50.0)];
        let sweep = tiny_sweep(
            vec![AggregatorKind::Mean, AggregatorKind::TrimmedMean { f: 1 }],
            plans.clone(),
        );
        let results = runner.run_sweep(&sweep);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].aggregator, "Mean");
        assert_eq!(results[0].fault_label, "clean");
        assert_eq!(results[1].fault_label, plans[1].label());
        assert_eq!(results[2].aggregator, "TrimmedMean(f=1)");
        // One clean reference + one faulted fit per aggregator.
        assert_eq!(runner.sharded_fits(), 4);
        for result in &results {
            assert_eq!(result.repetitions.len(), 1);
            assert!((0.0..=1.0).contains(&result.clean_accuracy.mean));
            assert!((-1.0..=1.0).contains(&result.ad.mean));
        }
        // Clean cells report AD exactly 0 against their own reference.
        assert_eq!(results[0].ad.mean, 0.0);
        assert_eq!(results[0].localization_hits, 0);
    }

    #[test]
    fn sweeps_are_deterministic() {
        let sweep = tiny_sweep(
            vec![AggregatorKind::Ctma { f: 1 }],
            vec![ShardFaultPlan::pair_flip(2, 50.0)],
        );
        let run = || {
            let mut results = ShardFaultRunner::new().run_sweep(&sweep);
            for r in &mut results {
                r.normalize_timings();
            }
            results.iter().map(|r| r.to_json()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn manifest_names_the_shard_in_provenance_and_round_trips() {
        let runner = ShardFaultRunner::new();
        let sweep = tiny_sweep(
            vec![AggregatorKind::Median],
            vec![ShardFaultPlan::clean(), ShardFaultPlan::mislabel(2, 50.0)],
        );
        let results = runner.run_sweep(&sweep);
        let json = tdfm_json::to_string_pretty(&results);
        let back: Vec<ShardFaultResult> = tdfm_json::from_str(&json).unwrap();
        assert_eq!(back.len(), results.len());
        assert_eq!(back[1].fault_label, results[1].fault_label);
        assert_eq!(back[1].ad.mean, results[1].ad.mean);

        let manifest = runner.manifest("unit", &results);
        assert_eq!(manifest.name, "unit");
        assert_eq!(manifest.scale, "tiny");
        assert_eq!(manifest.cells.len(), 2);
        assert_eq!(manifest.cells[0].technique, "Median");
        assert_eq!(manifest.cells[1].fault, "shard 2: Mislabelling 50%");
        // Provenance: only the faulty cell has records, targeting shard 2.
        assert!(!manifest.provenance.is_empty());
        assert!(manifest
            .provenance
            .iter()
            .all(|r| r.cell == 1 && r.source == "data" && r.target == "shard 2"));
        assert_eq!(
            manifest.provenance.iter().map(|r| r.count).sum::<u64>(),
            results[1].repetitions.len() as u64 * 3 // 50% of a 6-sample shard
        );
        // One clean reference fit plus one faulted fit; the clean plan
        // reuses the reference.
        assert_eq!(manifest.metrics.counter("sharded_fits"), Some(2));
    }
}
