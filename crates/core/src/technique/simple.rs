//! Techniques that are a single training run with a different criterion:
//! the baseline, label smoothing and robust loss.

use super::{FittedModel, Mitigation, TrainContext};
use tdfm_data::LabeledDataset;
use tdfm_nn::loss::{ActivePassiveLoss, CrossEntropy, LabelRelaxationLoss};
use tdfm_nn::models::ModelKind;
use tdfm_nn::trainer::{fit, TargetSource};

/// The unprotected model: plain cross entropy on the (faulty) data.
///
/// Every figure in the paper compares techniques against this baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Baseline;

impl Mitigation for Baseline {
    fn name(&self) -> &'static str {
        "Base"
    }

    fn fit(&self, model: ModelKind, train: &LabeledDataset, ctx: &TrainContext) -> FittedModel {
        let mut net = model.build(&ctx.model_config(train));
        fit(
            &mut net,
            &CrossEntropy,
            train.images(),
            &TargetSource::Hard(train.labels().to_vec()),
            &ctx.fit,
        );
        FittedModel::Single(net)
    }
}

/// Label smoothing via *label relaxation* — the representative
/// label-smoothing technique of Table I (Lienen & Hüllermeier).
#[derive(Debug, Clone, Copy)]
pub struct LabelSmoothing {
    alpha: f32,
}

impl LabelSmoothing {
    /// Creates the technique; the paper uses `alpha = 0.1`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        Self { alpha }
    }

    /// Smoothing coefficient.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Mitigation for LabelSmoothing {
    fn name(&self) -> &'static str {
        "LS"
    }

    fn fit(&self, model: ModelKind, train: &LabeledDataset, ctx: &TrainContext) -> FittedModel {
        let mut net = model.build(&ctx.model_config(train));
        fit(
            &mut net,
            &LabelRelaxationLoss::new(self.alpha),
            train.images(),
            &TargetSource::Hard(train.labels().to_vec()),
            &ctx.fit,
        );
        FittedModel::Single(net)
    }
}

/// Robust loss: the NCE+RCE active-passive combination (Ma et al.) —
/// the representative robust-loss technique of Table I.
///
/// The paper uses the implementers' recommended hyperparameters; Ma et
/// al. recommend `alpha = beta = 1` for few-class datasets and a much
/// stronger active term (`alpha = 10`, `beta = 0.1`, their CIFAR-100
/// setting) once the class count grows, because NCE's normalisation term
/// scales with the number of classes. [`RobustLoss::adaptive`] applies
/// that rule per dataset.
#[derive(Debug, Clone, Copy)]
pub struct RobustLoss {
    alpha: f32,
    beta: f32,
    adaptive: bool,
}

impl RobustLoss {
    /// Creates the technique with fixed weights.
    ///
    /// # Panics
    ///
    /// Panics if either weight is negative.
    pub fn new(alpha: f32, beta: f32) -> Self {
        assert!(
            alpha >= 0.0 && beta >= 0.0,
            "APL weights must be non-negative"
        );
        Self {
            alpha,
            beta,
            adaptive: false,
        }
    }

    /// Creates the technique with Ma et al.'s per-dataset recommendation:
    /// `(1, 1)` up to 20 classes, `(10, 0.1)` beyond.
    pub fn adaptive() -> Self {
        Self {
            alpha: 1.0,
            beta: 1.0,
            adaptive: true,
        }
    }

    fn weights_for(&self, classes: usize) -> (f32, f32) {
        if self.adaptive && classes > 20 {
            (10.0, 0.1)
        } else {
            (self.alpha, self.beta)
        }
    }
}

impl Mitigation for RobustLoss {
    fn name(&self) -> &'static str {
        "RL"
    }

    fn fit(&self, model: ModelKind, train: &LabeledDataset, ctx: &TrainContext) -> FittedModel {
        let (alpha, beta) = self.weights_for(train.classes());
        let mut net = model.build(&ctx.model_config(train));
        fit(
            &mut net,
            &ActivePassiveLoss::new(alpha, beta),
            train.images(),
            &TargetSource::Hard(train.labels().to_vec()),
            &ctx.fit,
        );
        FittedModel::Single(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::test_support::tiny_setup;

    #[test]
    fn baseline_learns_tiny_pneumonia() {
        let (train, test, ctx) = tiny_setup();
        let mut fitted = Baseline.fit(ModelKind::ConvNet, &train, &ctx);
        let acc = fitted.accuracy(&test);
        // Must beat the 74% majority class at least a little.
        assert!(acc > 0.5, "accuracy {acc}");
        assert_eq!(fitted.member_count(), 1);
    }

    #[test]
    fn label_smoothing_learns_tiny_pneumonia() {
        let (train, test, ctx) = tiny_setup();
        let mut fitted = LabelSmoothing::new(0.1).fit(ModelKind::ConvNet, &train, &ctx);
        assert!(fitted.accuracy(&test) > 0.5);
    }

    #[test]
    fn robust_loss_learns_tiny_pneumonia() {
        let (train, test, ctx) = tiny_setup();
        let mut fitted = RobustLoss::new(1.0, 1.0).fit(ModelKind::ConvNet, &train, &ctx);
        assert!(fitted.accuracy(&test) > 0.4);
    }

    #[test]
    fn techniques_are_deterministic() {
        let (train, test, ctx) = tiny_setup();
        let preds = |_: usize| {
            let mut fitted = Baseline.fit(ModelKind::ConvNet, &train, &ctx);
            fitted.predict(test.images())
        };
        assert_eq!(preds(0), preds(1));
    }
}
