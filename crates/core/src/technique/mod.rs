//! The five TDFM techniques (paper Section III-B) behind one trait, plus
//! fault-aware training for the model-fault axis (ROADMAP item 1).

mod correction;
mod distillation;
mod ensemble;
mod fault_aware;
mod simple;

pub use correction::LabelCorrection;
pub use distillation::SelfDistillation;
pub use ensemble::Ensemble;
pub use fault_aware::FaultAwareTraining;
pub use simple::{Baseline, LabelSmoothing, RobustLoss};

use tdfm_data::{LabeledDataset, Scale};
use tdfm_json::json_unit_enum;
use tdfm_nn::models::{ModelConfig, ModelKind};
use tdfm_nn::trainer::FitConfig;
use tdfm_nn::Network;
use tdfm_tensor::ops::softmax_rows;
use tdfm_tensor::Tensor;

/// Batch size used for evaluation-mode inference.
pub const EVAL_BATCH: usize = 64;

/// Everything a technique needs besides the (possibly faulty) training set.
#[derive(Debug, Clone)]
pub struct TrainContext {
    /// Experiment scale (drives width/epochs).
    pub scale: Scale,
    /// Per-repetition seed.
    pub seed: u64,
    /// Shared training hyperparameters.
    pub fit: FitConfig,
    /// Clean subset reserved from fault injection (label correction only;
    /// Section III-B2).
    pub clean_subset: Option<LabeledDataset>,
}

impl TrainContext {
    /// Builds a context with the scale's default hyperparameters.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            scale,
            seed,
            fit: FitConfig {
                epochs: scale.epochs(),
                batch_size: 32,
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 1e-4,
                lr_decay: 0.9,
                grad_clip: 5.0,
                shuffle_seed: seed,
            },
            clean_subset: None,
        }
    }

    /// Adapts the optimisation schedule to the training-set size.
    ///
    /// Small datasets (the Pneumonia analogue) would otherwise see a
    /// handful of gradient steps: the batch size targets roughly eight
    /// batches per epoch (clamped to `[4, 32]`), and the epoch count is
    /// raised until the run performs at least ~300 optimiser steps — the
    /// long-training regime in which the paper's models memorise label
    /// noise (its configurations trained ~45 minutes each).
    pub fn tune_for(&mut self, train_len: usize) {
        self.fit.batch_size = (train_len / 8).clamp(4, 32);
        let batches_per_epoch = train_len.div_ceil(self.fit.batch_size).max(1);
        let min_epochs = 300usize.div_ceil(batches_per_epoch);
        if min_epochs > self.fit.epochs {
            self.fit.epochs = min_epochs;
            // Stretch the decay schedule over the longer run.
            self.fit.lr_decay = self.fit.lr_decay.max(0.97);
        }
    }

    /// Model construction parameters matching a training set.
    pub fn model_config(&self, train: &LabeledDataset) -> ModelConfig {
        let (c, h, w) = train.image_shape();
        ModelConfig {
            in_shape: (c, h, w),
            classes: train.classes(),
            width: self.scale.model_width(),
            seed: self.seed,
        }
    }
}

/// A model (or ensemble of models) produced by a technique.
pub enum FittedModel {
    /// One network.
    Single(Network),
    /// Several networks combined by majority vote (Section III-B5).
    Ensemble(Vec<Network>),
}

impl FittedModel {
    /// Predicted class per test image.
    ///
    /// Ensembles take a simple majority vote; ties are broken by the
    /// summed softmax probability, then by the lowest class index.
    pub fn predict(&mut self, images: &Tensor) -> Vec<u32> {
        match self {
            FittedModel::Single(net) => net.predict(images, EVAL_BATCH),
            FittedModel::Ensemble(nets) => {
                assert!(!nets.is_empty(), "empty ensemble");
                let n = images.shape().dim(0);
                let k = nets[0].classes();
                let mut votes = vec![0u32; n * k];
                let mut prob_sum = Tensor::zeros(&[n, k]);
                for net in nets.iter_mut() {
                    let logits = net.logits(images, EVAL_BATCH);
                    let preds = tdfm_tensor::ops::argmax_rows(&logits);
                    for (i, &p) in preds.iter().enumerate() {
                        votes[i * k + p as usize] += 1;
                    }
                    prob_sum.axpy(1.0, &softmax_rows(&logits, 1.0));
                }
                (0..n)
                    .map(|i| {
                        let v = &votes[i * k..(i + 1) * k];
                        let p = &prob_sum.data()[i * k..(i + 1) * k];
                        let mut best = 0usize;
                        for j in 1..k {
                            let better_votes = v[j] > v[best];
                            let tie_better_prob = v[j] == v[best] && p[j] > p[best];
                            if better_votes || tie_better_prob {
                                best = j;
                            }
                        }
                        best as u32
                    })
                    .collect()
            }
        }
    }

    /// Accuracy on a labelled dataset.
    pub fn accuracy(&mut self, ds: &LabeledDataset) -> f32 {
        crate::metrics::accuracy(&self.predict(ds.images()), ds.labels())
    }

    /// Mutable access to every member network (one for `Single`) — the
    /// model-fault runner uses this to flip weight bits and install
    /// activation hooks on each member.
    pub fn networks_mut(&mut self) -> Vec<&mut Network> {
        match self {
            FittedModel::Single(net) => vec![net],
            FittedModel::Ensemble(nets) => nets.iter_mut().collect(),
        }
    }

    /// Number of member networks (1 unless this is an ensemble).
    pub fn member_count(&self) -> usize {
        match self {
            FittedModel::Single(_) => 1,
            FittedModel::Ensemble(nets) => nets.len(),
        }
    }
}

impl std::fmt::Debug for FittedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FittedModel::Single(net) => write!(f, "FittedModel::Single({})", net.name()),
            FittedModel::Ensemble(nets) => {
                write!(f, "FittedModel::Ensemble({} members)", nets.len())
            }
        }
    }
}

/// A training-data fault-mitigation technique.
///
/// Implementations train on the *faulty* dataset the experiment runner
/// hands them (Fig. 2) and return a fitted model; the runner measures AD
/// against the architecture's golden model.
pub trait Mitigation: Send + Sync {
    /// Short name matching the paper's figures (`"LS"`, `"LC"`, ...).
    fn name(&self) -> &'static str;

    /// Trains a protected model of the given architecture.
    fn fit(&self, model: ModelKind, train: &LabeledDataset, ctx: &TrainContext) -> FittedModel;

    /// Whether the technique consumes the reserved clean subset
    /// (label correction does; everything else ignores it).
    fn wants_clean_subset(&self) -> bool {
        false
    }

    /// Whether the fitted model is independent of the `model` argument.
    ///
    /// True for ensembles, whose composition is fixed by the technique —
    /// the experiment runner then shares one fitted ensemble across the
    /// per-model panels of a figure, exactly as the paper's "Ens" bar is
    /// identical in every panel.
    fn model_independent(&self) -> bool {
        false
    }
}

/// The six columns of the paper's figures: the baseline plus the five
/// mitigation techniques, with the paper's hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechniqueKind {
    /// Unprotected model trained with plain cross entropy.
    Baseline,
    /// Label relaxation with `alpha = 0.1` (Section III-B1).
    LabelSmoothing,
    /// Meta label correction with clean fraction `gamma = 0.1` (III-B2).
    LabelCorrection,
    /// NCE+RCE active-passive loss with Ma et al.'s recommended
    /// per-dataset weights (III-B3).
    RobustLoss,
    /// Self-distillation with `alpha = 0.7`, `T = 4` (III-B4).
    KnowledgeDistillation,
    /// 5-model heterogeneous majority-vote ensemble (III-B5).
    Ensemble,
    /// Training under stochastic weight bit-flips — hardens against
    /// *model* faults (SEUs) instead of data faults.
    FaultAwareTraining,
}

impl TechniqueKind {
    /// The data-fault techniques in the paper's column order. Kept at the
    /// paper's six so results recorded against the original grid are
    /// unchanged; the model-fault study iterates [`TechniqueKind::ALL_EXTENDED`].
    pub const ALL: [TechniqueKind; 6] = [
        TechniqueKind::Baseline,
        TechniqueKind::LabelSmoothing,
        TechniqueKind::LabelCorrection,
        TechniqueKind::RobustLoss,
        TechniqueKind::KnowledgeDistillation,
        TechniqueKind::Ensemble,
    ];

    /// [`TechniqueKind::ALL`] plus fault-aware training — the column set
    /// of the model-fault harness.
    pub const ALL_EXTENDED: [TechniqueKind; 7] = [
        TechniqueKind::Baseline,
        TechniqueKind::LabelSmoothing,
        TechniqueKind::LabelCorrection,
        TechniqueKind::RobustLoss,
        TechniqueKind::KnowledgeDistillation,
        TechniqueKind::Ensemble,
        TechniqueKind::FaultAwareTraining,
    ];

    /// Abbreviation used in the paper's tables (`Base`, `LS`, ...).
    pub fn abbrev(self) -> &'static str {
        match self {
            TechniqueKind::Baseline => "Base",
            TechniqueKind::LabelSmoothing => "LS",
            TechniqueKind::LabelCorrection => "LC",
            TechniqueKind::RobustLoss => "RL",
            TechniqueKind::KnowledgeDistillation => "KD",
            TechniqueKind::Ensemble => "Ens",
            TechniqueKind::FaultAwareTraining => "FAT",
        }
    }

    /// Full name.
    pub fn full_name(self) -> &'static str {
        match self {
            TechniqueKind::Baseline => "Baseline",
            TechniqueKind::LabelSmoothing => "Label Smoothing",
            TechniqueKind::LabelCorrection => "Label Correction",
            TechniqueKind::RobustLoss => "Robust Loss",
            TechniqueKind::KnowledgeDistillation => "Knowledge Distillation",
            TechniqueKind::Ensemble => "Ensemble",
            TechniqueKind::FaultAwareTraining => "Fault-Aware Training",
        }
    }

    /// Instantiates the representative implementation with the paper's
    /// hyperparameters.
    pub fn build(self) -> Box<dyn Mitigation> {
        match self {
            TechniqueKind::Baseline => Box::new(Baseline),
            TechniqueKind::LabelSmoothing => Box::new(LabelSmoothing::new(0.1)),
            TechniqueKind::LabelCorrection => Box::new(LabelCorrection::new(0.1)),
            TechniqueKind::RobustLoss => Box::new(RobustLoss::adaptive()),
            TechniqueKind::KnowledgeDistillation => Box::new(SelfDistillation::new(0.7, 4.0)),
            TechniqueKind::Ensemble => Box::new(Ensemble::paper_default()),
            TechniqueKind::FaultAwareTraining => Box::new(FaultAwareTraining::paper_default()),
        }
    }
}

json_unit_enum!(TechniqueKind {
    Baseline,
    LabelSmoothing,
    LabelCorrection,
    RobustLoss,
    KnowledgeDistillation,
    Ensemble,
    FaultAwareTraining,
});

impl std::fmt::Display for TechniqueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use tdfm_data::DatasetKind;

    /// A tiny train/test pair plus context for technique unit tests.
    ///
    /// The Pneumonia analogue at `Scale::Tiny` has only ~24 training
    /// samples; with the scale's default batch size and epochs the models
    /// would see a handful of gradient steps, so the test context trains a
    /// little longer with small batches.
    pub fn tiny_setup() -> (LabeledDataset, LabeledDataset, TrainContext) {
        let tt = DatasetKind::Pneumonia.generate(Scale::Tiny, 1);
        let mut ctx = TrainContext::new(Scale::Tiny, 1);
        ctx.fit.epochs = 12;
        ctx.fit.batch_size = 8;
        (tt.train, tt.test, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_unique_abbrevs() {
        let set: std::collections::HashSet<_> = TechniqueKind::ALL_EXTENDED
            .iter()
            .map(|t| t.abbrev())
            .collect();
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn extended_set_is_all_plus_fault_aware() {
        assert_eq!(&TechniqueKind::ALL_EXTENDED[..6], &TechniqueKind::ALL[..]);
        assert_eq!(
            TechniqueKind::ALL_EXTENDED[6],
            TechniqueKind::FaultAwareTraining
        );
    }

    #[test]
    fn build_matches_names() {
        assert_eq!(TechniqueKind::Baseline.build().name(), "Base");
        assert_eq!(TechniqueKind::LabelSmoothing.build().name(), "LS");
        assert_eq!(TechniqueKind::LabelCorrection.build().name(), "LC");
        assert_eq!(TechniqueKind::RobustLoss.build().name(), "RL");
        assert_eq!(TechniqueKind::KnowledgeDistillation.build().name(), "KD");
        assert_eq!(TechniqueKind::Ensemble.build().name(), "Ens");
        assert_eq!(TechniqueKind::FaultAwareTraining.build().name(), "FAT");
    }

    #[test]
    fn only_label_correction_wants_clean_data() {
        for kind in TechniqueKind::ALL_EXTENDED {
            let wants = kind.build().wants_clean_subset();
            assert_eq!(wants, kind == TechniqueKind::LabelCorrection, "{kind}");
        }
    }

    #[test]
    fn context_derives_model_config() {
        let (train, _, ctx) = test_support::tiny_setup();
        let cfg = ctx.model_config(&train);
        assert_eq!(cfg.classes, 2);
        assert_eq!(cfg.in_shape.0, 1);
        assert_eq!(cfg.width, Scale::Tiny.model_width());
    }
}
