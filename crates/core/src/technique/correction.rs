//! Meta label correction (paper Section III-B2).

use super::{FittedModel, Mitigation, TrainContext, EVAL_BATCH};
use tdfm_data::LabeledDataset;
use tdfm_inject::split_clean;
use tdfm_nn::layers::{Dense, Flatten, ReLU, Sequential};
use tdfm_nn::loss::CrossEntropy;
use tdfm_nn::models::ModelKind;
use tdfm_nn::trainer::{fit, FitConfig, TargetSource};
use tdfm_nn::Network;
use tdfm_tensor::ops::softmax_rows;
use tdfm_tensor::rng::Rng;
use tdfm_tensor::Tensor;

/// Meta label correction: a secondary model learns to correct faulty
/// labels while the primary model trains.
///
/// Following the paper's description (Section III-B2):
///
/// 1. A clean subset (fraction `gamma`) is reserved from fault injection by
///    the experiment runner and handed over via
///    [`TrainContext::clean_subset`].
/// 2. The primary model warms up on the faulty data with cross entropy.
/// 3. The *secondary* model — a multilayer perceptron, exactly the detail
///    the paper blames for the technique's failure on many-class datasets —
///    is trained on the clean subset to map `(primary softmax, observed
///    one-hot label)` to the true label. Synthetic label flips on the clean
///    subset teach it when to overrule the observed label.
/// 4. The primary model continues training against the secondary's
///    corrected soft targets.
///
/// Because the secondary is an MLP over `2K` inputs trained on a small
/// clean set, its capacity degrades with the class count `K` — reproducing
/// the paper's GTSRB finding — while dataset *size* matters little, also as
/// reported (Section IV-D).
#[derive(Debug, Clone, Copy)]
pub struct LabelCorrection {
    gamma: f32,
}

impl LabelCorrection {
    /// Creates the technique; the paper's clean fraction is `gamma = 0.1`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < gamma < 1`.
    pub fn new(gamma: f32) -> Self {
        assert!(gamma > 0.0 && gamma < 1.0, "gamma must be in (0, 1)");
        Self { gamma }
    }

    /// The clean-data fraction.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// Builds the secondary MLP: `2K -> 64 -> K`.
    fn secondary(classes: usize, rng: &mut Rng) -> Network {
        let body = Sequential::new()
            .push(Flatten::new())
            .push(Dense::new(2 * classes, 64, rng))
            .push(ReLU::new())
            .push(Dense::new(64, classes, rng));
        Network::new("LC-secondary", classes, body)
    }

    /// Assembles a secondary-model input row: primary softmax ++ one-hot.
    fn meta_features(probs: &Tensor, labels: &[u32], classes: usize) -> Tensor {
        let n = labels.len();
        let mut x = Tensor::zeros(&[n, 2 * classes, 1, 1]);
        for i in 0..n {
            let row = &mut x.data_mut()[i * 2 * classes..(i + 1) * 2 * classes];
            row[..classes].copy_from_slice(&probs.data()[i * classes..(i + 1) * classes]);
            row[classes + labels[i] as usize] = 1.0;
        }
        x
    }
}

impl Mitigation for LabelCorrection {
    fn name(&self) -> &'static str {
        "LC"
    }

    fn wants_clean_subset(&self) -> bool {
        true
    }

    fn fit(&self, model: ModelKind, train: &LabeledDataset, ctx: &TrainContext) -> FittedModel {
        let classes = train.classes();
        // The runner reserves the clean subset before injection; when used
        // standalone we carve it from the provided data (which then may not
        // be perfectly clean — same trade-off real deployments face).
        let owned;
        let (clean, noisy) = match &ctx.clean_subset {
            Some(c) => (c, train),
            None => {
                owned = split_clean(train, self.gamma, ctx.seed ^ 0x1C);
                (&owned.0, train)
            }
        };

        // Phase 1: warm up the primary model on the faulty data. The
        // corrected-label phase afterwards is a full-length run (the
        // technique trains two models concurrently in the original, which
        // is where its above-average training overhead comes from,
        // Section IV-E).
        let warmup = (ctx.fit.epochs / 2).max(1);
        let finetune = ctx.fit.epochs;
        let mut primary = model.build(&ctx.model_config(noisy));
        fit(
            &mut primary,
            &CrossEntropy,
            noisy.images(),
            &TargetSource::Hard(noisy.labels().to_vec()),
            &FitConfig {
                epochs: warmup,
                ..ctx.fit
            },
        );

        // Phase 2: train the secondary on the clean subset with synthetic
        // flips (we know the true labels there).
        let mut rng = Rng::seed_from(ctx.seed ^ 0x005E_C04D);
        let clean_probs = softmax_rows(&primary.logits(clean.images(), EVAL_BATCH), 1.0);
        let replicas = 4;
        let mut observed = Vec::with_capacity(clean.len() * replicas);
        let mut truth = Vec::with_capacity(clean.len() * replicas);
        let mut rows = Vec::with_capacity(clean.len() * replicas);
        for rep in 0..replicas {
            for (i, &y) in clean.labels().iter().enumerate() {
                let obs = if rep > 0 && rng.chance(0.5) && classes > 1 {
                    let mut other = rng.below(classes - 1) as u32;
                    if other >= y {
                        other += 1;
                    }
                    other
                } else {
                    y
                };
                observed.push(obs);
                truth.push(y);
                rows.push(i);
            }
        }
        let probs_rep = clean_probs.gather_rows(&rows);
        let meta_x = Self::meta_features(&probs_rep, &observed, classes);
        let mut secondary = Self::secondary(classes, &mut rng);
        fit(
            &mut secondary,
            &CrossEntropy,
            &meta_x,
            &TargetSource::Hard(truth),
            &FitConfig {
                epochs: 30,
                batch_size: 16,
                lr: 0.05,
                lr_decay: 0.95,
                shuffle_seed: ctx.seed ^ 0x2ED_5EED,
                ..FitConfig::default()
            },
        );

        // Phase 3: corrected soft targets for the noisy data, then
        // continue training the primary against them.
        let noisy_probs = softmax_rows(&primary.logits(noisy.images(), EVAL_BATCH), 1.0);
        let meta_noisy = Self::meta_features(&noisy_probs, noisy.labels(), classes);
        let corrected = softmax_rows(&secondary.logits(&meta_noisy, EVAL_BATCH), 1.0);
        fit(
            &mut primary,
            &CrossEntropy,
            noisy.images(),
            &TargetSource::Soft(corrected),
            &FitConfig {
                epochs: finetune,
                ..ctx.fit
            },
        );
        FittedModel::Single(primary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::test_support::tiny_setup;

    #[test]
    fn label_correction_learns_tiny_cifar() {
        // LC needs enough clean samples for its secondary model; the
        // 24-sample tiny Pneumonia set is exactly the small-data regime the
        // paper reports it failing in (Table IV), so test learning on the
        // larger 10-class set instead.
        use tdfm_data::{DatasetKind, Scale};
        let tt = DatasetKind::Cifar10.generate(Scale::Tiny, 1);
        let mut ctx = crate::technique::TrainContext::new(Scale::Tiny, 1);
        ctx.fit.epochs = 12;
        ctx.fit.batch_size = 16;
        let mut fitted = LabelCorrection::new(0.1).fit(ModelKind::ConvNet, &tt.train, &ctx);
        let acc = fitted.accuracy(&tt.test);
        assert!(acc > 0.2, "accuracy {acc} not better than 2x random");
    }

    #[test]
    fn uses_provided_clean_subset() {
        let (train, test, mut ctx) = tiny_setup();
        let (clean, rest) = split_clean(&train, 0.2, 3);
        ctx.clean_subset = Some(clean);
        let mut fitted = LabelCorrection::new(0.1).fit(ModelKind::ConvNet, &rest, &ctx);
        let _ = fitted.accuracy(&test); // must not panic
    }

    #[test]
    fn meta_features_layout() {
        let probs = Tensor::from_vec(vec![0.7, 0.3, 0.2, 0.8], &[2, 2]);
        let x = LabelCorrection::meta_features(&probs, &[1, 0], 2);
        assert_eq!(x.shape().dims(), &[2, 4, 1, 1]);
        assert_eq!(x.data(), &[0.7, 0.3, 0.0, 1.0, 0.2, 0.8, 1.0, 0.0]);
    }

    #[test]
    fn secondary_corrects_obvious_flips() {
        // Train a secondary on a toy problem where the primary's softmax is
        // perfect: the corrected label should follow the softmax, not the
        // (flipped) observed label.
        let mut rng = Rng::seed_from(0);
        let classes = 2;
        let n = 64;
        let mut labels = Vec::new();
        let mut probs = Tensor::zeros(&[n, classes]);
        for i in 0..n {
            let y = (i % 2) as u32;
            labels.push(y);
            probs.data_mut()[i * classes + y as usize] = 0.95;
            probs.data_mut()[i * classes + (1 - y as usize)] = 0.05;
        }
        // Observed labels: half flipped.
        let observed: Vec<u32> = labels
            .iter()
            .enumerate()
            .map(|(i, &y)| if i % 4 == 0 { 1 - y } else { y })
            .collect();
        let x = LabelCorrection::meta_features(&probs, &observed, classes);
        let mut secondary = LabelCorrection::secondary(classes, &mut rng);
        fit(
            &mut secondary,
            &CrossEntropy,
            &x,
            &TargetSource::Hard(labels.clone()),
            &FitConfig {
                epochs: 40,
                batch_size: 16,
                ..FitConfig::default()
            },
        );
        let preds = secondary.predict(&x, 32);
        let acc = crate::metrics::accuracy(&preds, &labels);
        assert!(acc > 0.9, "secondary failed to learn correction: {acc}");
    }
}
