//! Fault-aware training: hardening against *model* faults (SEU bit-flips)
//! rather than data faults.
//!
//! Unlike the five TDFM techniques of Section III-B, which target faulty
//! training *data*, this technique targets the second fault axis the paper
//! motivates (transient hardware faults in the model itself): every
//! optimisation step runs its forward/backward pass under a few random
//! weight bit-flips, which are reverted bit-exactly before the optimiser
//! updates the clean weights. The model thereby learns parameter basins
//! that stay accurate when a bit flips at inference time — the
//! fault-injection-during-training recipe of the fault-aware-training
//! literature (see `tdfm_nn::trainer::fit_fault_aware`).

use super::{FittedModel, Mitigation, TrainContext};
use tdfm_data::LabeledDataset;
use tdfm_nn::loss::CrossEntropy;
use tdfm_nn::models::ModelKind;
use tdfm_nn::trainer::{fit_fault_aware, FaultAwareConfig, TargetSource};

/// Trains with transient weight bit-flips injected into every step.
#[derive(Debug, Clone, Copy)]
pub struct FaultAwareTraining {
    flips_per_step: usize,
    bit_lo: u32,
    bit_hi: u32,
}

impl FaultAwareTraining {
    /// Creates the technique with a full-word (bits 0–31) fault model.
    ///
    /// # Panics
    ///
    /// Panics if `flips_per_step == 0`.
    pub fn new(flips_per_step: usize) -> Self {
        assert!(flips_per_step > 0, "fault-aware training needs flips");
        Self {
            flips_per_step,
            bit_lo: 0,
            bit_hi: 31,
        }
    }

    /// Restricts injected flips to bit positions `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi < 32`.
    pub fn with_bits(mut self, lo: u32, hi: u32) -> Self {
        assert!(lo <= hi && hi < 32, "invalid bit range {lo}..={hi}");
        self.bit_lo = lo;
        self.bit_hi = hi;
        self
    }

    /// The default configuration of the results harness: two simultaneous
    /// full-word flips per optimisation step.
    pub fn paper_default() -> Self {
        Self::new(2)
    }

    /// Simultaneous flips injected per step.
    pub fn flips_per_step(&self) -> usize {
        self.flips_per_step
    }
}

impl Mitigation for FaultAwareTraining {
    fn name(&self) -> &'static str {
        "FAT"
    }

    fn fit(&self, model: ModelKind, train: &LabeledDataset, ctx: &TrainContext) -> FittedModel {
        let mut net = model.build(&ctx.model_config(train));
        let fa = FaultAwareConfig {
            flips_per_step: self.flips_per_step,
            bit_lo: self.bit_lo,
            bit_hi: self.bit_hi,
            // Independent of the shuffle stream, distinct per repetition.
            seed: ctx.seed ^ 0xFA_7A,
        };
        fit_fault_aware(
            &mut net,
            &CrossEntropy,
            train.images(),
            &TargetSource::Hard(train.labels().to_vec()),
            &ctx.fit,
            &fa,
        );
        FittedModel::Single(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::test_support::tiny_setup;

    #[test]
    fn fault_aware_training_learns_tiny_pneumonia() {
        let (train, test, ctx) = tiny_setup();
        let mut fitted = FaultAwareTraining::paper_default().fit(ModelKind::ConvNet, &train, &ctx);
        let acc = fitted.accuracy(&test);
        assert!(acc > 0.4, "accuracy {acc}");
        assert_eq!(fitted.member_count(), 1);
    }

    #[test]
    fn fault_aware_training_is_deterministic() {
        let (train, test, ctx) = tiny_setup();
        let preds = |_: usize| {
            let mut fitted =
                FaultAwareTraining::paper_default().fit(ModelKind::ConvNet, &train, &ctx);
            fitted.predict(test.images())
        };
        assert_eq!(preds(0), preds(1));
    }

    #[test]
    #[should_panic(expected = "needs flips")]
    fn zero_flips_rejected() {
        let _ = FaultAwareTraining::new(0);
    }

    #[test]
    #[should_panic(expected = "invalid bit range")]
    fn bad_bit_range_rejected() {
        let _ = FaultAwareTraining::new(1).with_bits(8, 32);
    }
}
