//! Ensemble learning (paper Section III-B5).

use super::{FittedModel, Mitigation, TrainContext};
use tdfm_data::LabeledDataset;
use tdfm_nn::loss::CrossEntropy;
use tdfm_nn::models::ModelKind;
use tdfm_nn::trainer::{fit, FitConfig, TargetSource};
use tdfm_nn::Network;

/// A majority-vote ensemble of independently trained networks.
///
/// The paper's ensemble is the five models with the lowest baseline AD —
/// ConvNet, MobileNet, ResNet18, VGG11 and VGG16 (Section IV) — each
/// trained on the same (faulty) data with its own initialisation, combined
/// by simple majority vote at inference time. Architecture diversity is
/// what lets the ensemble tolerate faults: a fault must fool a majority of
/// structurally different models simultaneously.
///
/// Members are trained on worker threads (the study's stand-in for the
/// paper's GPU cluster). The `model` argument of [`Mitigation::fit`] is
/// ignored — the ensemble's composition is part of the technique, exactly
/// as in the paper's figures where the "Ens" bar is the same in every
/// per-model panel.
#[derive(Debug, Clone)]
pub struct Ensemble {
    members: Vec<ModelKind>,
}

impl Ensemble {
    /// The paper's 5-model ensemble.
    pub fn paper_default() -> Self {
        Self {
            members: vec![
                ModelKind::ConvNet,
                ModelKind::MobileNet,
                ModelKind::ResNet18,
                ModelKind::Vgg11,
                ModelKind::Vgg16,
            ],
        }
    }

    /// An ensemble of `n` copies of one architecture (differing only in
    /// initialisation) — the diversity-ablation configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn homogeneous(kind: ModelKind, n: usize) -> Self {
        assert!(n > 0, "ensemble needs at least one member");
        Self {
            members: vec![kind; n],
        }
    }

    /// A custom member list.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn with_members(members: Vec<ModelKind>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Self { members }
    }

    /// The member architectures.
    pub fn members(&self) -> &[ModelKind] {
        &self.members
    }
}

impl Mitigation for Ensemble {
    fn name(&self) -> &'static str {
        "Ens"
    }

    fn model_independent(&self) -> bool {
        true
    }

    fn fit(&self, _model: ModelKind, train: &LabeledDataset, ctx: &TrainContext) -> FittedModel {
        let nets: Vec<Network> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .members
                .iter()
                .enumerate()
                .map(|(i, &kind)| {
                    scope.spawn(move || {
                        let mut cfg = ctx.model_config(train);
                        // Decorrelate members: distinct init and batch order.
                        cfg.seed = ctx.seed ^ ((i as u64 + 1) * 0x9E37_79B9);
                        let mut net = kind.build(&cfg);
                        fit(
                            &mut net,
                            &CrossEntropy,
                            train.images(),
                            &TargetSource::Hard(train.labels().to_vec()),
                            &FitConfig {
                                shuffle_seed: ctx.fit.shuffle_seed ^ (i as u64) << 8,
                                ..ctx.fit
                            },
                        );
                        net
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("member training panicked"))
                .collect()
        });
        FittedModel::Ensemble(nets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::test_support::tiny_setup;

    #[test]
    fn paper_default_has_the_five_models() {
        let e = Ensemble::paper_default();
        assert_eq!(
            e.members(),
            &[
                ModelKind::ConvNet,
                ModelKind::MobileNet,
                ModelKind::ResNet18,
                ModelKind::Vgg11,
                ModelKind::Vgg16,
            ]
        );
    }

    #[test]
    fn ensemble_learns_tiny_pneumonia() {
        let (train, test, ctx) = tiny_setup();
        // Three members keep the unit test quick; the experiment runner
        // uses the paper's five.
        let ens = Ensemble::with_members(vec![
            ModelKind::ConvNet,
            ModelKind::DeconvNet,
            ModelKind::MobileNet,
        ]);
        let mut fitted = ens.fit(ModelKind::ConvNet, &train, &ctx);
        assert_eq!(fitted.member_count(), 3);
        assert!(fitted.accuracy(&test) > 0.5);
    }

    #[test]
    fn homogeneous_members_differ_by_seed() {
        let (train, test, ctx) = tiny_setup();
        let ens = Ensemble::homogeneous(ModelKind::ConvNet, 2);
        let mut fitted = ens.fit(ModelKind::ConvNet, &train, &ctx);
        if let FittedModel::Ensemble(nets) = &mut fitted {
            let a = nets[0].logits(test.images(), 32);
            let b = nets[1].logits(test.images(), 32);
            assert_ne!(a.data(), b.data(), "members should not be identical");
        } else {
            panic!("expected an ensemble");
        }
    }

    #[test]
    fn majority_vote_is_deterministic() {
        let (train, test, ctx) = tiny_setup();
        let ens = Ensemble::homogeneous(ModelKind::ConvNet, 3);
        let mut a = ens.fit(ModelKind::ConvNet, &train, &ctx);
        let mut b = ens.fit(ModelKind::ConvNet, &train, &ctx);
        assert_eq!(a.predict(test.images()), b.predict(test.images()));
    }
}
