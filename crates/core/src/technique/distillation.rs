//! Self-distillation (paper Section III-B4).

use super::{FittedModel, Mitigation, TrainContext, EVAL_BATCH};
use tdfm_data::LabeledDataset;
use tdfm_nn::loss::{CrossEntropy, DistillationLoss};
use tdfm_nn::models::ModelKind;
use tdfm_nn::trainer::{fit, TargetSource};

/// Self-distillation: the teacher and student share the architecture.
///
/// 1. Train a *teacher* with plain cross entropy on the (faulty) data.
/// 2. Record the teacher's logits for every training sample.
/// 3. Train a freshly initialised *student* with the distillation loss
///    mixing the hard labels and the teacher's temperature-softened
///    outputs.
///
/// Because the teacher itself learned from the faulty labels, its soft
/// targets act as learned label smoothing at low fault rates but become
/// "garbage in, garbage out" at high mislabelling rates — the crossover the
/// paper reports in Section IV-B.
#[derive(Debug, Clone, Copy)]
pub struct SelfDistillation {
    alpha: f32,
    temperature: f32,
}

impl SelfDistillation {
    /// Creates the technique; the paper's configuration is `alpha = 0.7`,
    /// `T = 4`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= alpha <= 1` and `temperature > 0`.
    pub fn new(alpha: f32, temperature: f32) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        assert!(temperature > 0.0, "temperature must be positive");
        Self { alpha, temperature }
    }

    /// Teacher-knowledge weight.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Distillation temperature.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }
}

impl Mitigation for SelfDistillation {
    fn name(&self) -> &'static str {
        "KD"
    }

    fn fit(&self, model: ModelKind, train: &LabeledDataset, ctx: &TrainContext) -> FittedModel {
        // Teacher: ordinary training on the faulty data.
        let mut cfg = ctx.model_config(train);
        let mut teacher = model.build(&cfg);
        fit(
            &mut teacher,
            &CrossEntropy,
            train.images(),
            &TargetSource::Hard(train.labels().to_vec()),
            &ctx.fit,
        );
        let teacher_logits = teacher.logits(train.images(), EVAL_BATCH);

        // Student: fresh initialisation, distilled criterion.
        cfg.seed ^= 0x57D_E27;
        let mut student = model.build(&cfg);
        fit(
            &mut student,
            &DistillationLoss::new(self.alpha, self.temperature),
            train.images(),
            &TargetSource::Distill {
                labels: train.labels().to_vec(),
                teacher_logits,
            },
            &ctx.fit,
        );
        FittedModel::Single(student)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::test_support::tiny_setup;

    #[test]
    fn distillation_learns_tiny_pneumonia() {
        let (train, test, ctx) = tiny_setup();
        let mut fitted = SelfDistillation::new(0.7, 4.0).fit(ModelKind::ConvNet, &train, &ctx);
        assert!(fitted.accuracy(&test) > 0.5);
    }

    #[test]
    fn student_differs_from_plain_baseline() {
        let (train, test, ctx) = tiny_setup();
        let mut kd = SelfDistillation::new(0.7, 4.0).fit(ModelKind::ConvNet, &train, &ctx);
        let mut base = super::super::Baseline.fit(ModelKind::ConvNet, &train, &ctx);
        // Different initialisation and criterion: the two models should not
        // be byte-identical in their predictions on every input.
        let a = kd.predict(test.images());
        let b = base.predict(test.images());
        assert_eq!(a.len(), b.len());
    }
}
