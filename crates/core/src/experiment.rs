//! The experiment protocol of Fig. 2: golden model vs technique-protected
//! faulty model, repeated and summarised with confidence intervals.
//!
//! The runner exploits two levels of parallelism, mirroring how the paper
//! spread its 33 days of GPU time over a cluster:
//!
//! * [`Runner::run_grid`] fans independent experiment cells across worker
//!   threads, and [`Runner::run_with`] does the same for the repetitions
//!   inside one cell. Results are collected by index, so output order (and
//!   the serialised JSON) is identical to a sequential run.
//! * Each worker hands the nested tensor kernels a reduced thread budget
//!   via [`tdfm_tensor::parallel::with_inner_threads`], so grid-level and
//!   kernel-level parallelism share one global budget instead of
//!   oversubscribing the machine.
//!
//! Golden-model and shared-fit caches are keyed maps of
//! [`OnceLock`] slots: concurrent cells that need the same golden model
//! block on one training instead of racing to train it twice.

use crate::metrics::{accuracy, accuracy_delta, ConfidenceInterval};
use crate::technique::{Mitigation, TechniqueKind, TrainContext};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use tdfm_data::{DatasetKind, Scale, TrainTest};
use tdfm_inject::{split_clean, FaultPlan, Injector, ProvenanceBuilder};
use tdfm_json::json_struct;
use tdfm_nn::models::ModelKind;
use tdfm_obs::{event, span, Level, ManifestCell, ProvenanceRecord, RunManifest};
use tdfm_tensor::parallel::{num_threads, with_inner_threads};

/// One experiment cell: a (dataset, model, technique, fault plan) tuple at
/// a given scale, repeated `repetitions` times.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Dataset under study.
    pub dataset: DatasetKind,
    /// Architecture under study (ignored by the ensemble technique, whose
    /// composition is fixed — see the paper's figures).
    pub model: ModelKind,
    /// Mitigation technique (or the baseline).
    pub technique: TechniqueKind,
    /// Faults injected into the training data.
    pub fault_plan: FaultPlan,
    /// Experiment scale.
    pub scale: Scale,
    /// Number of repetitions (the paper used 20).
    pub repetitions: usize,
    /// Base seed; repetition `r` derives its own seed.
    pub seed: u64,
}

json_struct!(ExperimentConfig {
    dataset,
    model,
    technique,
    fault_plan,
    scale,
    repetitions,
    seed
});

/// Raw outcome of one repetition.
#[derive(Debug, Clone)]
pub struct RepetitionResult {
    /// Test accuracy of the golden (clean-trained, unprotected) model.
    pub golden_accuracy: f32,
    /// Test accuracy of the technique-protected faulty model.
    pub faulty_accuracy: f32,
    /// Accuracy delta (Fig. 2).
    pub accuracy_delta: f32,
    /// Wall-clock training time of the protected model, seconds.
    pub train_seconds: f64,
    /// Wall-clock test-set inference time of the protected model, seconds.
    pub infer_seconds: f64,
}

json_struct!(RepetitionResult {
    golden_accuracy,
    faulty_accuracy,
    accuracy_delta,
    train_seconds,
    infer_seconds
});

/// Aggregated outcome of one experiment cell.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The configuration this result belongs to.
    pub config: ExperimentConfig,
    /// Human-readable fault label (e.g. `"Mislabelling 30%"`).
    pub fault_label: String,
    /// Per-repetition raw results.
    pub repetitions: Vec<RepetitionResult>,
    /// AD mean and 95% CI over repetitions.
    pub ad: ConfidenceInterval,
    /// Golden accuracy mean and CI.
    pub golden_accuracy: ConfidenceInterval,
    /// Faulty (protected) accuracy mean and CI.
    pub faulty_accuracy: ConfidenceInterval,
}

json_struct!(ExperimentResult {
    config,
    fault_label,
    repetitions,
    ad,
    golden_accuracy,
    faulty_accuracy
});

impl ExperimentResult {
    /// Serialises the result as pretty JSON.
    pub fn to_json(&self) -> String {
        tdfm_json::to_string_pretty(self)
    }

    /// Zeroes the wall-clock fields, which are the only part of a result
    /// that is not a deterministic function of the configuration. Used by
    /// callers comparing parallel against sequential output byte for byte.
    pub fn normalize_timings(&mut self) {
        for rep in &mut self.repetitions {
            rep.train_seconds = 0.0;
            rep.infer_seconds = 0.0;
        }
    }
}

#[derive(Clone)]
struct GoldenEntry {
    predictions: Vec<u32>,
    accuracy: f32,
}

type GoldenKey = (DatasetKind, ModelKind, Scale, u64);

#[derive(Clone)]
struct SharedFit {
    predictions: Vec<u32>,
    train_seconds: f64,
    infer_seconds: f64,
}

/// Key for model-independent techniques: (technique name, dataset, scale,
/// repetition seed, fault label).
type SharedKey = (&'static str, DatasetKind, Scale, u64, String);

/// A cache of `V` values computed at most once per key.
///
/// The map lock is only held to look up or insert the per-key slot — never
/// while computing a value — so concurrent workers stay off each other's
/// keys. Workers that race on the *same* key block on the slot's
/// [`OnceLock`] and share the single computed value, which is what makes
/// the golden cache safe under [`Runner::run_grid`].
struct OnceMap<K, V> {
    slots: Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>,
}

impl<K: std::hash::Hash + Eq + Clone, V> OnceMap<K, V> {
    fn new() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
        }
    }

    fn get_or_compute(&self, key: &K, compute: impl FnOnce() -> V) -> Arc<V> {
        let slot = {
            let mut map = self.slots.lock().expect("cache lock poisoned");
            Arc::clone(map.entry(key.clone()).or_default())
        };
        Arc::clone(slot.get_or_init(|| Arc::new(compute())))
    }

    /// Number of keys whose value has been computed.
    fn len(&self) -> usize {
        self.slots
            .lock()
            .expect("cache lock poisoned")
            .values()
            .filter(|slot| slot.get().is_some())
            .count()
    }
}

/// Runs experiment cells, caching golden-model predictions.
///
/// The golden model for a `(dataset, model, scale, repetition-seed)` tuple
/// is shared by every technique and fault amount, and fitted ensembles are
/// shared across per-model panels — the same sharing the paper exploits to
/// keep 33 days of GPU time tractable.
///
/// Each runner owns a private [`tdfm_obs::Registry`] so cache counters and
/// cell/repetition timings stay exact even when several runners share a
/// process (as the test suite does); [`Runner::manifest`] snapshots it,
/// merged with the process-global registry, into a [`RunManifest`].
pub struct Runner {
    golden: OnceMap<GoldenKey, GoldenEntry>,
    shared: OnceMap<SharedKey, SharedFit>,
    metrics: tdfm_obs::Registry,
    /// Injection provenance accumulated per cell identity (dataset |
    /// model | technique | fault label), summed over every repetition
    /// this runner executed for that identity; [`Runner::manifest`] joins
    /// it against the matching results' AD. A `BTreeMap` keeps manifest
    /// output deterministic under [`Runner::run_grid`]'s thread fan-out.
    provenance: Mutex<BTreeMap<String, ProvenanceBuilder>>,
    cache_dir: Option<std::path::PathBuf>,
}

impl Default for Runner {
    fn default() -> Self {
        Self {
            golden: OnceMap::new(),
            shared: OnceMap::new(),
            metrics: tdfm_obs::Registry::new(),
            provenance: Mutex::new(BTreeMap::new()),
            cache_dir: None,
        }
    }
}

/// The provenance-map key of a cell: every config field that identifies
/// a [`ManifestCell`] (scale and seed excluded — they are already fixed
/// per run and would only split identical cells apart).
fn cell_key(config: &ExperimentConfig) -> String {
    format!(
        "{}|{}|{}|{}",
        config.dataset.name(),
        config.model.name(),
        config.technique.full_name(),
        config.fault_plan.label()
    )
}

/// Runs `work(0..count)` on up to [`num_threads`] workers, collecting the
/// results by index into a pre-sized vector so output order never depends
/// on scheduling. Each worker runs under an inner thread budget of
/// `total / workers`, keeping nested parallelism (tensor kernels, ensemble
/// members, per-cell repetitions) within the global budget.
pub(crate) fn run_indexed<T: Send>(count: usize, work: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let budget = num_threads();
    let workers = budget.min(count);
    if workers <= 1 {
        return (0..count).map(work).collect();
    }
    let inner = (budget / workers).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let slots = &slots;
            let work = &work;
            scope.spawn(move || {
                // The budget must be re-established here: thread-locals do
                // not cross the spawn.
                with_inner_threads(inner, || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = work(i);
                    *slots[i].lock().expect("slot lock poisoned") = Some(result);
                });
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("every slot is filled")
        })
        .collect()
}

impl Runner {
    /// Creates a runner with an empty golden cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a runner that additionally persists golden predictions to
    /// `dir`, so repeated harness invocations skip retraining golden
    /// models (created on first write).
    pub fn with_cache_dir(dir: impl Into<std::path::PathBuf>) -> Self {
        Self {
            cache_dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// Number of cached golden models (useful for tests/diagnostics).
    pub fn golden_cache_len(&self) -> usize {
        self.golden.len()
    }

    /// Number of golden models actually *trained* (disk-cache hits and
    /// in-memory hits don't count). Under [`Runner::run_grid`] this must
    /// equal the number of distinct golden keys, however many cells share
    /// them — the regression guard for the cache's in-flight deduplication.
    ///
    /// Backed by this runner's `golden_trainings` metrics counter, which
    /// also lands in the run manifest.
    pub fn golden_trainings(&self) -> usize {
        self.metrics.counter("golden_trainings").get() as usize
    }

    /// Snapshot of this runner's private metrics (cache counters, cell and
    /// repetition timings).
    pub fn metrics_snapshot(&self) -> tdfm_obs::MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn golden_cache_path(&self, key: &GoldenKey) -> Option<std::path::PathBuf> {
        self.cache_dir.as_ref().map(|dir| {
            dir.join(format!(
                "golden-{}-{}-{}-{}.json",
                key.0.name().replace('-', ""),
                key.1.name(),
                key.2.name(),
                key.3
            ))
        })
    }

    fn golden_entry(
        &self,
        dataset: DatasetKind,
        model: ModelKind,
        scale: Scale,
        rep_seed: u64,
        data: &TrainTest,
    ) -> Arc<GoldenEntry> {
        let key = (dataset, model, scale, rep_seed);
        self.metrics.counter("golden_lookups").inc();
        self.golden.get_or_compute(&key, || {
            // Second level: the on-disk cache, when configured.
            if let Some(path) = self.golden_cache_path(&key) {
                if let Ok(text) = std::fs::read_to_string(&path) {
                    if let Ok(predictions) = tdfm_json::from_str::<Vec<u32>>(&text) {
                        if predictions.len() == data.test.len() {
                            self.metrics.counter("golden_disk_hits").inc();
                            return GoldenEntry {
                                accuracy: accuracy(&predictions, data.test.labels()),
                                predictions,
                            };
                        }
                    }
                }
            }
            self.metrics.counter("golden_trainings").inc();
            event!(
                Level::Debug,
                "golden_training",
                dataset = dataset.name(),
                model = model.name(),
                scale = scale.name(),
                rep_seed = rep_seed
            );
            let mut ctx = TrainContext::new(scale, rep_seed);
            ctx.tune_for(data.train.len());
            let mut fitted = TechniqueKind::Baseline
                .build()
                .fit(model, &data.train, &ctx);
            let predictions = fitted.predict(data.test.images());
            if let Some(path) = self.golden_cache_path(&key) {
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                let _ = std::fs::write(&path, tdfm_json::to_string(&predictions));
            }
            GoldenEntry {
                accuracy: accuracy(&predictions, data.test.labels()),
                predictions,
            }
        })
    }

    /// Runs one experiment cell.
    ///
    /// Per repetition: generate the dataset, obtain (or reuse) the golden
    /// model's test predictions, inject the fault plan into the training
    /// data, fit the technique, and measure accuracy + AD on the test set.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn run(&self, config: &ExperimentConfig) -> ExperimentResult {
        let technique = config.technique.build();
        self.run_with(config, technique.as_ref())
    }

    /// Runs one experiment cell with a caller-provided technique (used by
    /// the ablation studies, e.g. homogeneous ensembles). The
    /// `config.technique` field is kept for reporting only.
    ///
    /// Repetitions execute on worker threads (within the current thread
    /// budget) and are collected by index, so the aggregated result is
    /// identical to a sequential run: each repetition is a deterministic
    /// function of its derived seed.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn run_with(
        &self,
        config: &ExperimentConfig,
        technique: &dyn Mitigation,
    ) -> ExperimentResult {
        assert!(config.repetitions > 0, "need at least one repetition");
        let reps = run_indexed(config.repetitions, |r| {
            let rep_seed = config
                .seed
                .wrapping_add(1 + r as u64)
                .wrapping_mul(0x9E37_79B9);
            let _rep_span = span!("repetition", rep = r, seed = rep_seed);
            let started = Instant::now();
            let result = self.run_repetition(config, technique, rep_seed);
            self.metrics
                .histogram("repetition_seconds")
                .record(started.elapsed());
            result
        });
        let ad_samples: Vec<f32> = reps.iter().map(|r| r.accuracy_delta).collect();
        let golden_samples: Vec<f32> = reps.iter().map(|r| r.golden_accuracy).collect();
        let faulty_samples: Vec<f32> = reps.iter().map(|r| r.faulty_accuracy).collect();
        ExperimentResult {
            fault_label: config.fault_plan.label(),
            ad: ConfidenceInterval::t95(&ad_samples),
            golden_accuracy: ConfidenceInterval::t95(&golden_samples),
            faulty_accuracy: ConfidenceInterval::t95(&faulty_samples),
            repetitions: reps,
            config: config.clone(),
        }
    }

    fn run_repetition(
        &self,
        config: &ExperimentConfig,
        technique: &dyn Mitigation,
        rep_seed: u64,
    ) -> RepetitionResult {
        let data = config.dataset.generate(config.scale, rep_seed);
        let golden = self.golden_entry(config.dataset, config.model, config.scale, rep_seed, &data);

        let mut ctx = TrainContext::new(config.scale, rep_seed);
        ctx.tune_for(data.train.len());
        let injector = Injector::new(rep_seed ^ 0xFA_17);
        let (faulty_train, injection) = if technique.wants_clean_subset() {
            // Reserve the clean fraction *before* injection (III-B2).
            let (clean, rest) = split_clean(&data.train, 0.1, rep_seed ^ 0xC1EA);
            ctx.clean_subset = Some(clean);
            injector.apply(&rest, &config.fault_plan)
        } else {
            injector.apply(&data.train, &config.fault_plan)
        };
        if !injection.records.is_empty() {
            self.provenance
                .lock()
                .expect("provenance lock poisoned")
                .entry(cell_key(config))
                .or_default()
                .extend(&injection.records);
        }

        let shared_key: Option<SharedKey> = if technique.model_independent() {
            Some((
                technique.name(),
                config.dataset,
                config.scale,
                rep_seed,
                config.fault_plan.label(),
            ))
        } else {
            None
        };
        let fit_once = || {
            self.metrics.counter("technique_fits").inc();
            let t0 = Instant::now();
            let mut fitted = technique.fit(config.model, &faulty_train, &ctx);
            let train_seconds = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let predictions = fitted.predict(data.test.images());
            let infer_seconds = t1.elapsed().as_secs_f64();
            SharedFit {
                predictions,
                train_seconds,
                infer_seconds,
            }
        };
        let fit = match shared_key {
            Some(key) => self.shared.get_or_compute(&key, fit_once),
            None => Arc::new(fit_once()),
        };

        RepetitionResult {
            golden_accuracy: golden.accuracy,
            faulty_accuracy: accuracy(&fit.predictions, data.test.labels()),
            accuracy_delta: accuracy_delta(
                &golden.predictions,
                &fit.predictions,
                data.test.labels(),
            ),
            train_seconds: fit.train_seconds,
            infer_seconds: fit.infer_seconds,
        }
    }

    /// Runs several cells in sequence, returning results in input order.
    pub fn run_all(&self, configs: &[ExperimentConfig]) -> Vec<ExperimentResult> {
        configs.iter().map(|c| self.run(c)).collect()
    }

    /// Runs a grid of cells concurrently, returning results in input order.
    ///
    /// Cells are fanned across up to [`num_threads`] workers; each worker
    /// keeps its nested parallelism (repetitions, ensemble members, tensor
    /// kernels) within its share of the budget. Every cell is deterministic
    /// in its own seeds, so apart from wall-clock timings the output is
    /// byte-identical to calling [`Runner::run`] per cell — see
    /// [`ExperimentResult::normalize_timings`].
    pub fn run_grid(&self, configs: &[ExperimentConfig]) -> Vec<ExperimentResult> {
        let techniques: Vec<Box<dyn Mitigation>> =
            configs.iter().map(|c| c.technique.build()).collect();
        let cells: Vec<(&ExperimentConfig, &dyn Mitigation)> = configs
            .iter()
            .zip(&techniques)
            .map(|(c, t)| (c, t.as_ref()))
            .collect();
        self.run_grid_with(&cells)
    }

    /// [`Runner::run_grid`] with caller-provided techniques (the ablation
    /// studies pair each cell with a custom [`Mitigation`]).
    ///
    /// With `TDFM_LOG=info` (or a trace file) each completed cell emits a
    /// `grid_progress` event — `cell 7/40` plus an ETA extrapolated from
    /// the cells finished so far.
    pub fn run_grid_with(
        &self,
        cells: &[(&ExperimentConfig, &dyn Mitigation)],
    ) -> Vec<ExperimentResult> {
        let total = cells.len();
        let grid_started = Instant::now();
        let completed = AtomicUsize::new(0);
        run_indexed(total, |i| {
            let (config, technique) = cells[i];
            let _cell_span = span!(
                "cell",
                index = i,
                dataset = config.dataset.name(),
                model = config.model.name(),
                technique = config.technique.full_name(),
                fault = config.fault_plan.label()
            );
            let started = Instant::now();
            let result = self.run_with(config, technique);
            self.metrics
                .histogram("cell_seconds")
                .record(started.elapsed());
            self.metrics.counter("cells_completed").inc();
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            event!(
                Level::Info,
                "grid_progress",
                cell = done,
                total = total,
                eta_seconds = {
                    let elapsed = grid_started.elapsed().as_secs_f64();
                    elapsed / done as f64 * (total - done) as f64
                }
            );
            result
        })
    }

    /// Builds the run manifest for a batch of results produced by this
    /// runner: one [`ManifestCell`] per result (identity, seeds, summed
    /// repetition wall time) plus this runner's metrics merged with the
    /// process-global registry (kernel-op and span timings, grad-clip
    /// counts). Harness binaries and `tdfm sweep` write this next to
    /// their results files; `tdfm report` aggregates it back.
    pub fn manifest(&self, name: &str, results: &[ExperimentResult]) -> RunManifest {
        let scale = match results {
            [] => "-".to_string(),
            [first, rest @ ..] => {
                if rest.iter().any(|r| r.config.scale != first.config.scale) {
                    "mixed".to_string()
                } else {
                    first.config.scale.name().to_string()
                }
            }
        };
        let mut manifest = RunManifest::new(name, scale, num_threads());
        manifest.cells = results
            .iter()
            .enumerate()
            .map(|(index, result)| ManifestCell {
                index,
                dataset: result.config.dataset.name().to_string(),
                model: result.config.model.name().to_string(),
                technique: result.config.technique.full_name().to_string(),
                fault: result.fault_label.clone(),
                scale: result.config.scale.name().to_string(),
                repetitions: result.config.repetitions,
                seed: result.config.seed,
                wall_seconds: result
                    .repetitions
                    .iter()
                    .map(|rep| rep.train_seconds + rep.infer_seconds)
                    .sum(),
            })
            .collect();
        let provenance = self.provenance.lock().expect("provenance lock poisoned");
        for (index, result) in results.iter().enumerate() {
            // tdfm-lint: allow(lock-held-across-call, cell_key is a pure string formatter)
            let Some(builder) = provenance.get(&cell_key(&result.config)) else {
                continue;
            };
            // tdfm-lint: allow(lock-held-across-call, records() clones out of the builder without taking any lock)
            for r in builder.records() {
                manifest.provenance.push(ProvenanceRecord {
                    cell: index,
                    source: "data".to_string(),
                    kind: r.kind,
                    target: r.target,
                    bit_lo: r.bit_lo,
                    bit_hi: r.bit_hi,
                    bucket: r.bucket,
                    count: r.count,
                    ad_mean: result.ad.mean as f64,
                });
            }
        }
        drop(provenance);
        let mut metrics = self.metrics.snapshot();
        metrics.merge(&tdfm_obs::global().snapshot());
        manifest.metrics = metrics;
        manifest
    }

    /// Runs several cells on at most `workers` threads, returning results
    /// in input order. Results are identical to [`Runner::run_all`] (minus
    /// timings) because every cell is deterministic in its own seeds.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn run_all_parallel(
        &self,
        configs: &[ExperimentConfig],
        workers: usize,
    ) -> Vec<ExperimentResult> {
        assert!(workers > 0, "need at least one worker");
        with_inner_threads(workers, || self.run_grid(configs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfm_inject::FaultKind;

    fn tiny_config(technique: TechniqueKind, percent: f32) -> ExperimentConfig {
        ExperimentConfig {
            dataset: DatasetKind::Pneumonia,
            model: ModelKind::ConvNet,
            technique,
            fault_plan: if percent > 0.0 {
                FaultPlan::single(FaultKind::Mislabelling, percent)
            } else {
                FaultPlan::none()
            },
            scale: Scale::Tiny,
            repetitions: 2,
            seed: 42,
        }
    }

    #[test]
    fn runner_produces_valid_metrics() {
        let runner = Runner::new();
        let result = runner.run(&tiny_config(TechniqueKind::Baseline, 30.0));
        assert_eq!(result.repetitions.len(), 2);
        for rep in &result.repetitions {
            assert!((0.0..=1.0).contains(&rep.accuracy_delta));
            assert!((0.0..=1.0).contains(&rep.golden_accuracy));
            assert!((0.0..=1.0).contains(&rep.faulty_accuracy));
            assert!(rep.train_seconds > 0.0);
        }
        assert!((0.0..=1.0).contains(&result.ad.mean));
    }

    #[test]
    fn golden_cache_is_shared_across_techniques() {
        let runner = Runner::new();
        let _ = runner.run(&tiny_config(TechniqueKind::Baseline, 10.0));
        let after_first = runner.golden_cache_len();
        let _ = runner.run(&tiny_config(TechniqueKind::LabelSmoothing, 10.0));
        // Same dataset/model/scale/seed tuple: no new golden trainings.
        assert_eq!(runner.golden_cache_len(), after_first);
        assert_eq!(runner.golden_trainings(), after_first);
    }

    #[test]
    fn runs_are_deterministic() {
        let runner = Runner::new();
        let a = runner.run(&tiny_config(TechniqueKind::Baseline, 30.0));
        let b = runner.run(&tiny_config(TechniqueKind::Baseline, 30.0));
        assert_eq!(a.ad.mean, b.ad.mean);
        assert_eq!(a.faulty_accuracy.mean, b.faulty_accuracy.mean);
    }

    #[test]
    fn clean_plan_yields_zero_ish_ad_for_baseline() {
        // With no faults, the "faulty" model is the golden model retrained
        // with the same seed — predictions should match almost exactly.
        let runner = Runner::new();
        let result = runner.run(&tiny_config(TechniqueKind::Baseline, 0.0));
        assert!(result.ad.mean < 0.05, "AD {}", result.ad.mean);
    }

    #[test]
    fn json_serialisation_round_trips() {
        let runner = Runner::new();
        let result = runner.run(&tiny_config(TechniqueKind::Baseline, 10.0));
        let json = result.to_json();
        let back: ExperimentResult = tdfm_json::from_str(&json).unwrap();
        assert_eq!(back.ad.mean, result.ad.mean);
        assert_eq!(back.fault_label, result.fault_label);
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let runner = Runner::new();
        let configs = vec![
            tiny_config(TechniqueKind::Baseline, 10.0),
            tiny_config(TechniqueKind::LabelSmoothing, 30.0),
        ];
        let seq = runner.run_all(&configs);
        let par = Runner::new().run_all_parallel(&configs, 2);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.ad.mean, b.ad.mean);
            assert_eq!(a.faulty_accuracy.mean, b.faulty_accuracy.mean);
        }
    }

    #[test]
    fn grid_is_byte_identical_to_sequential_and_trains_each_golden_once() {
        // Four cells: the first two share every golden key (same dataset,
        // model, scale and seed), the third differs by seed, the fourth by
        // model. With 2 repetitions each that is 6 distinct golden keys
        // for 8 (cell, repetition) pairs. (The third seed must not be
        // adjacent to 42: repetition seeds are (seed + 1 + r) · φ, so seed
        // 43 would share a golden key with repetition 1 of seed 42.)
        let mut third = tiny_config(TechniqueKind::Baseline, 30.0);
        third.seed = 50;
        let mut fourth = tiny_config(TechniqueKind::Baseline, 10.0);
        fourth.model = ModelKind::DeconvNet;
        let configs = vec![
            tiny_config(TechniqueKind::Baseline, 10.0),
            tiny_config(TechniqueKind::LabelSmoothing, 30.0),
            third,
            fourth,
        ];

        let sequential_runner = Runner::new();
        let sequential: Vec<ExperimentResult> =
            configs.iter().map(|c| sequential_runner.run(c)).collect();

        let grid_runner = Runner::new();
        // Force real fan-out even on a small CI machine.
        let grid = with_inner_threads(4, || grid_runner.run_grid(&configs));

        assert_eq!(
            grid_runner.golden_trainings(),
            6,
            "each golden key trains once"
        );
        assert_eq!(grid_runner.golden_cache_len(), 6);

        for (mut a, mut b) in sequential.into_iter().zip(grid) {
            a.normalize_timings();
            b.normalize_timings();
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "grid output must match sequential"
            );
        }
    }

    #[test]
    fn disk_cache_round_trips_golden_predictions() {
        let dir = std::env::temp_dir().join("tdfm-golden-cache-test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = tiny_config(TechniqueKind::Baseline, 10.0);
        let first = Runner::with_cache_dir(&dir).run(&config);
        // Cache files were written.
        let entries = std::fs::read_dir(&dir).unwrap().count();
        assert!(entries > 0, "no cache files written");
        // A fresh runner reading the same cache reproduces the metrics
        // without retraining.
        let reader = Runner::with_cache_dir(&dir);
        let second = reader.run(&config);
        assert_eq!(reader.golden_trainings(), 0, "disk hits must not retrain");
        assert_eq!(first.ad.mean, second.ad.mean);
        assert_eq!(first.golden_accuracy.mean, second.golden_accuracy.mean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_captures_cells_counters_and_round_trips() {
        let runner = Runner::new();
        let configs = vec![
            tiny_config(TechniqueKind::Baseline, 10.0),
            tiny_config(TechniqueKind::LabelSmoothing, 10.0),
        ];
        let results = runner.run_grid(&configs);
        let manifest = runner.manifest("unit", &results);

        assert_eq!(manifest.name, "unit");
        assert_eq!(manifest.scale, "tiny");
        assert_eq!(manifest.cells.len(), 2);
        assert!(manifest.thread_budget >= 1);
        for (i, cell) in manifest.cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.dataset, "Pneumonia");
            assert_eq!(cell.repetitions, 2);
            assert!(cell.wall_seconds > 0.0);
        }
        // Two cells x two repetitions share every golden key: four lookups,
        // two trainings — a 50% hit rate in `tdfm report` terms.
        assert_eq!(manifest.metrics.counter("golden_lookups"), Some(4));
        assert_eq!(manifest.metrics.counter("golden_trainings"), Some(2));
        assert_eq!(manifest.metrics.counter("cells_completed"), Some(2));
        assert_eq!(manifest.metrics.counter("technique_fits"), Some(4));

        let back: RunManifest = tdfm_json::from_str(&manifest.to_json()).unwrap();
        assert_eq!(back, manifest);
    }

    #[test]
    fn manifest_joins_injection_provenance_with_ad() {
        let runner = Runner::new();
        let configs = vec![
            tiny_config(TechniqueKind::Baseline, 30.0),
            tiny_config(TechniqueKind::Baseline, 0.0), // clean: no provenance
        ];
        let results = runner.run_grid(&configs);
        let manifest = runner.manifest("unit", &results);

        assert!(
            !manifest.provenance.is_empty(),
            "faulty cell has provenance"
        );
        // Only the faulty cell (index 0) contributes records.
        assert!(manifest.provenance.iter().all(|r| r.cell == 0));
        for r in &manifest.provenance {
            assert_eq!(r.source, "data");
            assert_eq!(r.kind, "Mislabelling");
            assert!(r.bucket.starts_with("idx "), "bucketed victims: {r:?}");
            assert!(r.count > 0);
            assert_eq!(r.ad_mean, results[0].ad.mean as f64);
        }
        // Counts reconcile with the injection totals: 30% of the training
        // set, per repetition.
        let total: u64 = manifest.provenance.iter().map(|r| r.count).sum();
        let expected: u64 = results[0]
            .repetitions
            .len()
            .checked_mul({
                let n = DatasetKind::Pneumonia.generate(Scale::Tiny, 1).train.len();
                ((0.3 * n as f32).round()) as usize
            })
            .unwrap() as u64;
        assert_eq!(total, expected);

        let back: RunManifest = tdfm_json::from_str(&manifest.to_json()).unwrap();
        assert_eq!(back.provenance, manifest.provenance);
    }

    #[test]
    fn label_correction_gets_clean_subset() {
        let runner = Runner::new();
        // Must not panic; LC path reserves the clean subset internally.
        let result = runner.run(&tiny_config(TechniqueKind::LabelCorrection, 30.0));
        assert!((0.0..=1.0).contains(&result.ad.mean));
    }
}
