//! The experiment protocol of Fig. 2: golden model vs technique-protected
//! faulty model, repeated and summarised with confidence intervals.

use crate::metrics::{accuracy, accuracy_delta, ConfidenceInterval};
use crate::technique::{Mitigation, TechniqueKind, TrainContext};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use tdfm_data::{DatasetKind, Scale, TrainTest};
use tdfm_inject::{split_clean, FaultPlan, Injector};
use tdfm_nn::models::ModelKind;

/// One experiment cell: a (dataset, model, technique, fault plan) tuple at
/// a given scale, repeated `repetitions` times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Dataset under study.
    pub dataset: DatasetKind,
    /// Architecture under study (ignored by the ensemble technique, whose
    /// composition is fixed — see the paper's figures).
    pub model: ModelKind,
    /// Mitigation technique (or the baseline).
    pub technique: TechniqueKind,
    /// Faults injected into the training data.
    pub fault_plan: FaultPlan,
    /// Experiment scale.
    pub scale: Scale,
    /// Number of repetitions (the paper used 20).
    pub repetitions: usize,
    /// Base seed; repetition `r` derives its own seed.
    pub seed: u64,
}

/// Raw outcome of one repetition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepetitionResult {
    /// Test accuracy of the golden (clean-trained, unprotected) model.
    pub golden_accuracy: f32,
    /// Test accuracy of the technique-protected faulty model.
    pub faulty_accuracy: f32,
    /// Accuracy delta (Fig. 2).
    pub accuracy_delta: f32,
    /// Wall-clock training time of the protected model, seconds.
    pub train_seconds: f64,
    /// Wall-clock test-set inference time of the protected model, seconds.
    pub infer_seconds: f64,
}

/// Aggregated outcome of one experiment cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration this result belongs to.
    pub config: ExperimentConfig,
    /// Human-readable fault label (e.g. `"Mislabelling 30%"`).
    pub fault_label: String,
    /// Per-repetition raw results.
    pub repetitions: Vec<RepetitionResult>,
    /// AD mean and 95% CI over repetitions.
    pub ad: ConfidenceInterval,
    /// Golden accuracy mean and CI.
    pub golden_accuracy: ConfidenceInterval,
    /// Faulty (protected) accuracy mean and CI.
    pub faulty_accuracy: ConfidenceInterval,
}

impl ExperimentResult {
    /// Serialises the result as pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics for the types involved (no non-string map keys).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("result serialisation cannot fail")
    }
}

#[derive(Clone)]
struct GoldenEntry {
    predictions: Vec<u32>,
    accuracy: f32,
}

type GoldenKey = (DatasetKind, ModelKind, Scale, u64);

#[derive(Clone)]
struct SharedFit {
    predictions: Vec<u32>,
    train_seconds: f64,
    infer_seconds: f64,
}

/// Key for model-independent techniques: (technique name, dataset, scale,
/// repetition seed, fault label).
type SharedKey = (&'static str, DatasetKind, Scale, u64, String);

/// Runs experiment cells, caching golden-model predictions.
///
/// The golden model for a `(dataset, model, scale, repetition-seed)` tuple
/// is shared by every technique and fault amount, and fitted ensembles are
/// shared across per-model panels — the same sharing the paper exploits to
/// keep 33 days of GPU time tractable.
#[derive(Default)]
pub struct Runner {
    golden: Mutex<HashMap<GoldenKey, Arc<GoldenEntry>>>,
    shared: Mutex<HashMap<SharedKey, Arc<SharedFit>>>,
    cache_dir: Option<std::path::PathBuf>,
}

impl Runner {
    /// Creates a runner with an empty golden cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a runner that additionally persists golden predictions to
    /// `dir`, so repeated harness invocations skip retraining golden
    /// models (created on first write).
    pub fn with_cache_dir(dir: impl Into<std::path::PathBuf>) -> Self {
        Self { cache_dir: Some(dir.into()), ..Self::default() }
    }

    /// Number of cached golden models (useful for tests/diagnostics).
    pub fn golden_cache_len(&self) -> usize {
        self.golden.lock().len()
    }

    fn golden_cache_path(&self, key: &GoldenKey) -> Option<std::path::PathBuf> {
        self.cache_dir.as_ref().map(|dir| {
            dir.join(format!(
                "golden-{}-{}-{}-{}.json",
                key.0.name().replace('-', ""),
                key.1.name(),
                key.2.name(),
                key.3
            ))
        })
    }

    fn golden_entry(
        &self,
        dataset: DatasetKind,
        model: ModelKind,
        scale: Scale,
        rep_seed: u64,
        data: &TrainTest,
    ) -> Arc<GoldenEntry> {
        let key = (dataset, model, scale, rep_seed);
        if let Some(hit) = self.golden.lock().get(&key) {
            return Arc::clone(hit);
        }
        // Second level: the on-disk cache, when configured.
        if let Some(path) = self.golden_cache_path(&key) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Ok(predictions) = serde_json::from_str::<Vec<u32>>(&text) {
                    if predictions.len() == data.test.len() {
                        let entry = Arc::new(GoldenEntry {
                            accuracy: accuracy(&predictions, data.test.labels()),
                            predictions,
                        });
                        self.golden.lock().insert(key, Arc::clone(&entry));
                        return entry;
                    }
                }
            }
        }
        let mut ctx = TrainContext::new(scale, rep_seed);
        ctx.tune_for(data.train.len());
        let mut fitted = TechniqueKind::Baseline.build().fit(model, &data.train, &ctx);
        let predictions = fitted.predict(data.test.images());
        if let Some(path) = self.golden_cache_path(&key) {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(
                &path,
                serde_json::to_string(&predictions).expect("u32 vec serialises"),
            );
        }
        let entry = Arc::new(GoldenEntry {
            accuracy: accuracy(&predictions, data.test.labels()),
            predictions,
        });
        self.golden.lock().insert(key, Arc::clone(&entry));
        entry
    }

    /// Runs one experiment cell.
    ///
    /// Per repetition: generate the dataset, obtain (or reuse) the golden
    /// model's test predictions, inject the fault plan into the training
    /// data, fit the technique, and measure accuracy + AD on the test set.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn run(&self, config: &ExperimentConfig) -> ExperimentResult {
        let technique = config.technique.build();
        self.run_with(config, technique.as_ref())
    }

    /// Runs one experiment cell with a caller-provided technique (used by
    /// the ablation studies, e.g. homogeneous ensembles). The
    /// `config.technique` field is kept for reporting only.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn run_with(
        &self,
        config: &ExperimentConfig,
        technique: &dyn Mitigation,
    ) -> ExperimentResult {
        assert!(config.repetitions > 0, "need at least one repetition");
        let mut reps = Vec::with_capacity(config.repetitions);
        for r in 0..config.repetitions {
            let rep_seed = config.seed.wrapping_add(1 + r as u64).wrapping_mul(0x9E37_79B9);
            reps.push(self.run_repetition(config, technique, rep_seed));
        }
        let ad_samples: Vec<f32> = reps.iter().map(|r| r.accuracy_delta).collect();
        let golden_samples: Vec<f32> = reps.iter().map(|r| r.golden_accuracy).collect();
        let faulty_samples: Vec<f32> = reps.iter().map(|r| r.faulty_accuracy).collect();
        ExperimentResult {
            fault_label: config.fault_plan.label(),
            ad: ConfidenceInterval::t95(&ad_samples),
            golden_accuracy: ConfidenceInterval::t95(&golden_samples),
            faulty_accuracy: ConfidenceInterval::t95(&faulty_samples),
            repetitions: reps,
            config: config.clone(),
        }
    }

    fn run_repetition(
        &self,
        config: &ExperimentConfig,
        technique: &dyn Mitigation,
        rep_seed: u64,
    ) -> RepetitionResult {
        let data = config.dataset.generate(config.scale, rep_seed);
        let golden =
            self.golden_entry(config.dataset, config.model, config.scale, rep_seed, &data);

        let mut ctx = TrainContext::new(config.scale, rep_seed);
        ctx.tune_for(data.train.len());
        let injector = Injector::new(rep_seed ^ 0xFA_17);
        let faulty_train = if technique.wants_clean_subset() {
            // Reserve the clean fraction *before* injection (III-B2).
            let (clean, rest) = split_clean(&data.train, 0.1, rep_seed ^ 0xC1EA);
            ctx.clean_subset = Some(clean);
            injector.apply(&rest, &config.fault_plan).0
        } else {
            injector.apply(&data.train, &config.fault_plan).0
        };

        let shared_key: Option<SharedKey> = if technique.model_independent() {
            Some((
                technique.name(),
                config.dataset,
                config.scale,
                rep_seed,
                config.fault_plan.label(),
            ))
        } else {
            None
        };
        let cached = shared_key
            .as_ref()
            .and_then(|k| self.shared.lock().get(k).map(Arc::clone));
        let (predictions, train_seconds, infer_seconds) = match cached {
            Some(hit) => (hit.predictions.clone(), hit.train_seconds, hit.infer_seconds),
            None => {
                let t0 = Instant::now();
                let mut fitted = technique.fit(config.model, &faulty_train, &ctx);
                let train_seconds = t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                let predictions = fitted.predict(data.test.images());
                let infer_seconds = t1.elapsed().as_secs_f64();
                if let Some(k) = shared_key {
                    self.shared.lock().insert(
                        k,
                        Arc::new(SharedFit {
                            predictions: predictions.clone(),
                            train_seconds,
                            infer_seconds,
                        }),
                    );
                }
                (predictions, train_seconds, infer_seconds)
            }
        };

        RepetitionResult {
            golden_accuracy: golden.accuracy,
            faulty_accuracy: accuracy(&predictions, data.test.labels()),
            accuracy_delta: accuracy_delta(
                &golden.predictions,
                &predictions,
                data.test.labels(),
            ),
            train_seconds,
            infer_seconds,
        }
    }

    /// Runs several cells in sequence, returning results in input order.
    pub fn run_all(&self, configs: &[ExperimentConfig]) -> Vec<ExperimentResult> {
        configs.iter().map(|c| self.run(c)).collect()
    }

    /// Runs several cells on `workers` threads, returning results in input
    /// order. Falls back to the sequential path for one worker (the study
    /// machine) — results are identical either way because every cell is
    /// deterministic in its own seeds.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn run_all_parallel(
        &self,
        configs: &[ExperimentConfig],
        workers: usize,
    ) -> Vec<ExperimentResult> {
        assert!(workers > 0, "need at least one worker");
        if workers == 1 || configs.len() <= 1 {
            return self.run_all(configs);
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ExperimentResult>>> =
            configs.iter().map(|_| Mutex::new(None)).collect();
        crossbeam::scope(|scope| {
            for _ in 0..workers.min(configs.len()) {
                let next = &next;
                let slots = &slots;
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= configs.len() {
                        break;
                    }
                    let result = self.run(&configs[i]);
                    *slots[i].lock() = Some(result);
                });
            }
        })
        .expect("experiment worker panicked");
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot is filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfm_inject::FaultKind;

    fn tiny_config(technique: TechniqueKind, percent: f32) -> ExperimentConfig {
        ExperimentConfig {
            dataset: DatasetKind::Pneumonia,
            model: ModelKind::ConvNet,
            technique,
            fault_plan: if percent > 0.0 {
                FaultPlan::single(FaultKind::Mislabelling, percent)
            } else {
                FaultPlan::none()
            },
            scale: Scale::Tiny,
            repetitions: 2,
            seed: 42,
        }
    }

    #[test]
    fn runner_produces_valid_metrics() {
        let runner = Runner::new();
        let result = runner.run(&tiny_config(TechniqueKind::Baseline, 30.0));
        assert_eq!(result.repetitions.len(), 2);
        for rep in &result.repetitions {
            assert!((0.0..=1.0).contains(&rep.accuracy_delta));
            assert!((0.0..=1.0).contains(&rep.golden_accuracy));
            assert!((0.0..=1.0).contains(&rep.faulty_accuracy));
            assert!(rep.train_seconds > 0.0);
        }
        assert!((0.0..=1.0).contains(&result.ad.mean));
    }

    #[test]
    fn golden_cache_is_shared_across_techniques() {
        let runner = Runner::new();
        let _ = runner.run(&tiny_config(TechniqueKind::Baseline, 10.0));
        let after_first = runner.golden_cache_len();
        let _ = runner.run(&tiny_config(TechniqueKind::LabelSmoothing, 10.0));
        // Same dataset/model/scale/seed tuple: no new golden trainings.
        assert_eq!(runner.golden_cache_len(), after_first);
    }

    #[test]
    fn runs_are_deterministic() {
        let runner = Runner::new();
        let a = runner.run(&tiny_config(TechniqueKind::Baseline, 30.0));
        let b = runner.run(&tiny_config(TechniqueKind::Baseline, 30.0));
        assert_eq!(a.ad.mean, b.ad.mean);
        assert_eq!(a.faulty_accuracy.mean, b.faulty_accuracy.mean);
    }

    #[test]
    fn clean_plan_yields_zero_ish_ad_for_baseline() {
        // With no faults, the "faulty" model is the golden model retrained
        // with the same seed — predictions should match almost exactly.
        let runner = Runner::new();
        let result = runner.run(&tiny_config(TechniqueKind::Baseline, 0.0));
        assert!(result.ad.mean < 0.05, "AD {}", result.ad.mean);
    }

    #[test]
    fn json_serialisation_round_trips() {
        let runner = Runner::new();
        let result = runner.run(&tiny_config(TechniqueKind::Baseline, 10.0));
        let json = result.to_json();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ad.mean, result.ad.mean);
        assert_eq!(back.fault_label, result.fault_label);
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let runner = Runner::new();
        let configs = vec![
            tiny_config(TechniqueKind::Baseline, 10.0),
            tiny_config(TechniqueKind::LabelSmoothing, 30.0),
        ];
        let seq = runner.run_all(&configs);
        let par = Runner::new().run_all_parallel(&configs, 2);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.ad.mean, b.ad.mean);
            assert_eq!(a.faulty_accuracy.mean, b.faulty_accuracy.mean);
        }
    }

    #[test]
    fn disk_cache_round_trips_golden_predictions() {
        let dir = std::env::temp_dir().join("tdfm-golden-cache-test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = tiny_config(TechniqueKind::Baseline, 10.0);
        let first = Runner::with_cache_dir(&dir).run(&config);
        // Cache files were written.
        let entries = std::fs::read_dir(&dir).unwrap().count();
        assert!(entries > 0, "no cache files written");
        // A fresh runner reading the same cache reproduces the metrics.
        let second = Runner::with_cache_dir(&dir).run(&config);
        assert_eq!(first.ad.mean, second.ad.mean);
        assert_eq!(first.golden_accuracy.mean, second.golden_accuracy.mean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn label_correction_gets_clean_subset() {
        let runner = Runner::new();
        // Must not panic; LC path reserves the clean subset internally.
        let result = runner.run(&tiny_config(TechniqueKind::LabelCorrection, 30.0));
        assert!((0.0..=1.0).contains(&result.ad.mean));
    }
}
