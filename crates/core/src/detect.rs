//! Label-noise *detection* — the complement the paper's introduction
//! distinguishes from mitigation ("articles that propose techniques to
//! mitigate the effects of label noise, rather than mechanisms for
//! detecting label noise", Section III-A).
//!
//! This module implements a confident-learning-style detector in the
//! spirit of Northcutt et al. (paper reference \[12\], cited for pervasive
//! label errors): out-of-sample predicted probabilities from k-fold
//! cross-validation, per-class confidence thresholds, and a suspect rule
//! that flags samples whose given label looks inconsistent with a
//! confidently predicted other class. [`DetectAndFilter`] turns the
//! detector into a sixth mitigation: drop the suspects, then retrain —
//! usable as a baseline against the paper's five techniques.

use crate::technique::{Baseline, FittedModel, Mitigation, TrainContext, EVAL_BATCH};
use tdfm_data::LabeledDataset;
use tdfm_json::json_struct;
use tdfm_nn::loss::CrossEntropy;
use tdfm_nn::models::ModelKind;
use tdfm_nn::trainer::{fit, TargetSource};
use tdfm_tensor::ops::softmax_rows;
use tdfm_tensor::rng::Rng;
use tdfm_tensor::Tensor;

/// Confident-learning-style label-noise detector.
#[derive(Debug, Clone, Copy)]
pub struct NoiseDetector {
    folds: usize,
    model: ModelKind,
}

impl Default for NoiseDetector {
    fn default() -> Self {
        Self {
            folds: 3,
            model: ModelKind::ConvNet,
        }
    }
}

impl NoiseDetector {
    /// Creates a detector with `folds`-fold cross-validation using the
    /// given probe architecture.
    ///
    /// # Panics
    ///
    /// Panics if `folds < 2`.
    pub fn new(folds: usize, model: ModelKind) -> Self {
        assert!(folds >= 2, "cross-validation needs at least two folds");
        Self { folds, model }
    }

    /// Computes out-of-sample class probabilities for every training
    /// sample via k-fold cross-validation.
    fn out_of_sample_probs(&self, train: &LabeledDataset, ctx: &TrainContext) -> Tensor {
        let n = train.len();
        let classes = train.classes();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = Rng::seed_from(ctx.seed ^ 0x00DE_7EC7);
        rng.shuffle(&mut order);
        let mut probs = Tensor::zeros(&[n, classes]);
        for fold in 0..self.folds {
            let held_out: Vec<usize> = order
                .iter()
                .copied()
                .skip(fold)
                .step_by(self.folds)
                .collect();
            let held_set: std::collections::HashSet<usize> = held_out.iter().copied().collect();
            let fit_idx: Vec<usize> = (0..n).filter(|i| !held_set.contains(i)).collect();
            if fit_idx.is_empty() || held_out.is_empty() {
                continue;
            }
            let fit_set = train.select(&fit_idx);
            let mut cfg = ctx.model_config(train);
            cfg.seed = ctx.seed ^ (fold as u64) << 16;
            let mut net = self.model.build(&cfg);
            fit(
                &mut net,
                &CrossEntropy,
                fit_set.images(),
                &TargetSource::Hard(fit_set.labels().to_vec()),
                &ctx.fit,
            );
            let held_images = train.images().gather_rows(&held_out);
            let p = softmax_rows(&net.logits(&held_images, EVAL_BATCH), 1.0);
            for (row, &i) in held_out.iter().enumerate() {
                probs.data_mut()[i * classes..(i + 1) * classes]
                    .copy_from_slice(&p.data()[row * classes..(row + 1) * classes]);
            }
        }
        probs
    }

    /// Runs detection over a (possibly faulty) training set.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer samples than folds.
    pub fn detect(&self, train: &LabeledDataset, ctx: &TrainContext) -> DetectionReport {
        assert!(train.len() >= self.folds, "dataset smaller than fold count");
        let classes = train.classes();
        let probs = self.out_of_sample_probs(train, ctx);

        // Per-class confidence threshold: mean probability the class gets
        // on samples *labelled* with it (the confident-joint thresholds of
        // confident learning).
        let mut sums = vec![0.0f32; classes];
        let mut counts = vec![0usize; classes];
        for (i, &y) in train.labels().iter().enumerate() {
            sums[y as usize] += probs.data()[i * classes + y as usize];
            counts[y as usize] += 1;
        }
        let thresholds: Vec<f32> = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| if c == 0 { f32::INFINITY } else { s / c as f32 })
            .collect();

        let mut suspects = Vec::new();
        let mut scores = vec![0.0f32; train.len()];
        for (i, &y) in train.labels().iter().enumerate() {
            let row = &probs.data()[i * classes..(i + 1) * classes];
            let py = row[y as usize];
            // Cleanlab-style rule: the sample must look *unlike* its own
            // class (below that class's confident threshold) and *like*
            // some other class (at or above that class's threshold).
            if py >= thresholds[y as usize] {
                continue;
            }
            let mut best: Option<(usize, f32)> = None;
            for (j, (&pj, &tj)) in row.iter().zip(&thresholds).enumerate() {
                if j != y as usize && pj >= tj && pj > py {
                    let margin = pj - py;
                    if best.is_none_or(|(_, m)| margin > m) {
                        best = Some((j, margin));
                    }
                }
            }
            if let Some((_, margin)) = best {
                scores[i] = margin;
                suspects.push(i);
            }
        }
        // Most suspicious first. `total_cmp`, not `partial_cmp`: a NaN
        // margin must not silently scramble the ranking (and ties break by
        // ascending index, keeping the order deterministic).
        suspects.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        DetectionReport {
            suspects,
            scores,
            thresholds,
        }
    }
}

/// What the detector found.
#[derive(Debug, Clone)]
pub struct DetectionReport {
    /// Indices of suspected mislabelled samples, most suspicious first.
    pub suspects: Vec<usize>,
    /// Per-sample suspicion margin (0 for unsuspected samples).
    pub scores: Vec<f32>,
    /// Per-class confidence thresholds used by the suspect rule.
    pub thresholds: Vec<f32>,
}

/// Detection quality against the injector's ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionQuality {
    /// Fraction of flagged samples that really were mislabelled.
    pub precision: f32,
    /// Fraction of mislabelled samples that were flagged.
    pub recall: f32,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f32,
}

json_struct!(DetectionReport {
    suspects,
    scores,
    thresholds
});

json_struct!(DetectionQuality {
    precision,
    recall,
    f1
});

impl DetectionReport {
    /// Scores the detection against known fault positions (from
    /// [`tdfm_inject::InjectionReport::mislabelled_indices`]).
    pub fn evaluate(&self, truly_faulty: &[usize]) -> DetectionQuality {
        let truth: std::collections::HashSet<usize> = truly_faulty.iter().copied().collect();
        let flagged: std::collections::HashSet<usize> = self.suspects.iter().copied().collect();
        let hits = flagged.intersection(&truth).count();
        let precision = if flagged.is_empty() {
            0.0
        } else {
            hits as f32 / flagged.len() as f32
        };
        let recall = if truth.is_empty() {
            0.0
        } else {
            hits as f32 / truth.len() as f32
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        DetectionQuality {
            precision,
            recall,
            f1,
        }
    }
}

/// Detect-and-filter mitigation: flag suspects, drop them, retrain the
/// baseline on the cleaned set.
///
/// This is *not* one of the paper's five techniques — it is the detection
/// strategy the paper deliberately scoped out, implemented here so the two
/// philosophies can be compared on the same harness (see the `detector`
/// bench binary).
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectAndFilter {
    detector: NoiseDetector,
}

impl DetectAndFilter {
    /// Creates the mitigation with a custom detector.
    pub fn new(detector: NoiseDetector) -> Self {
        Self { detector }
    }
}

impl Mitigation for DetectAndFilter {
    fn name(&self) -> &'static str {
        "DF"
    }

    fn fit(&self, model: ModelKind, train: &LabeledDataset, ctx: &TrainContext) -> FittedModel {
        let report = self.detector.detect(train, ctx);
        let flagged: std::collections::HashSet<usize> = report.suspects.iter().copied().collect();
        let keep: Vec<usize> = (0..train.len()).filter(|i| !flagged.contains(i)).collect();
        // Never drop everything: fall back to the full set if the detector
        // went wild.
        let filtered = if keep.len() >= train.len() / 2 {
            train.select(&keep)
        } else {
            train.clone()
        };
        Baseline.fit(model, &filtered, ctx)
    }
}

/// What shard localization found: per-shard disagreement scores and the
/// shards ranked most-suspect first.
#[derive(Debug, Clone)]
pub struct ShardLocalizationReport {
    /// Per-shard disagreement between the aggregated model's predictions
    /// and the shard's own held-out labels (fraction in `[0, 1]`).
    pub scores: Vec<f32>,
    /// Shard indices ranked by descending score (ties break by ascending
    /// index).
    pub suspects: Vec<usize>,
}

json_struct!(ShardLocalizationReport { scores, suspects });

impl ShardLocalizationReport {
    /// The top-ranked suspect shard.
    ///
    /// # Panics
    ///
    /// Panics if the report covers no shards.
    pub fn top(&self) -> usize {
        *self.suspects.first().expect("no shards were scored")
    }
}

/// FedDebug-style faulty-shard localization: scores each worker's shard by
/// the disagreement between the aggregated model's predictions and the
/// shard's *own* labels on that shard's held-out slice.
///
/// A mislabelled shard keeps its bad labels in the held-out slice, while a
/// robustly aggregated model predicts the consensus of the clean majority
/// — so the faulty shard's disagreement stands out. Scores use
/// `total_cmp` for the ranking, so a NaN score (an empty-prediction bug
/// upstream) cannot scramble the suspect order.
///
/// # Panics
///
/// Panics if `holdouts` is empty.
pub fn localize_faulty_shards(
    net: &mut tdfm_nn::Network,
    holdouts: &[LabeledDataset],
) -> ShardLocalizationReport {
    assert!(!holdouts.is_empty(), "no shards to localize over");
    let scores: Vec<f32> = holdouts
        .iter()
        .map(|shard| {
            let preds = net.predict(shard.images(), EVAL_BATCH);
            let disagreements = preds
                .iter()
                .zip(shard.labels())
                .filter(|(p, l)| p != l)
                .count();
            disagreements as f32 / shard.len() as f32
        })
        .collect();
    let mut suspects: Vec<usize> = (0..holdouts.len()).collect();
    suspects.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    ShardLocalizationReport { scores, suspects }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfm_data::{DatasetKind, Scale};
    use tdfm_inject::{FaultKind, FaultPlan, Injector};

    fn setup() -> (LabeledDataset, Vec<usize>, TrainContext) {
        let tt = DatasetKind::Cifar10.generate(Scale::Tiny, 8);
        let plan = FaultPlan::single(FaultKind::Mislabelling, 30.0);
        let (faulty, report) = Injector::new(8).apply(&tt.train, &plan);
        let mut ctx = TrainContext::new(Scale::Tiny, 8);
        ctx.fit.epochs = 8;
        ctx.fit.batch_size = 16;
        (faulty, report.mislabelled_indices, ctx)
    }

    #[test]
    fn detector_beats_random_guessing() {
        let (faulty, truth, ctx) = setup();
        let report = NoiseDetector::default().detect(&faulty, &ctx);
        let quality = report.evaluate(&truth);
        // Random flagging at the same budget would have precision ~30%
        // (the injection rate); the detector must do better.
        assert!(
            quality.precision > 0.35,
            "precision {} not better than chance",
            quality.precision
        );
        assert!(quality.recall > 0.2, "recall {}", quality.recall);
    }

    #[test]
    fn strong_probe_separates_clean_from_noisy() {
        // At smoke scale the probe classifies the CIFAR analogue well, so
        // clean data yields few false positives while noisy data yields
        // many true ones — the regime the detector is designed for.
        let tt = DatasetKind::Cifar10.generate(Scale::Smoke, 9);
        let mut ctx = TrainContext::new(Scale::Smoke, 9);
        ctx.tune_for(tt.train.len());
        let clean_flags = NoiseDetector::default()
            .detect(&tt.train, &ctx)
            .suspects
            .len();
        let plan = FaultPlan::single(FaultKind::Mislabelling, 40.0);
        let (faulty, report) = Injector::new(9).apply(&tt.train, &plan);
        let noisy = NoiseDetector::default().detect(&faulty, &ctx);
        assert!(
            noisy.suspects.len() > clean_flags,
            "noisy {} vs clean {clean_flags}",
            noisy.suspects.len()
        );
        let quality = noisy.evaluate(&report.mislabelled_indices);
        assert!(quality.precision > 0.6, "precision {}", quality.precision);
        assert!(quality.recall > 0.5, "recall {}", quality.recall);
    }

    #[test]
    fn quality_math() {
        let report = DetectionReport {
            suspects: vec![0, 1, 2, 3],
            scores: vec![0.5; 8],
            thresholds: vec![0.5; 2],
        };
        let q = report.evaluate(&[0, 1, 6, 7]);
        assert!((q.precision - 0.5).abs() < 1e-6);
        assert!((q.recall - 0.5).abs() < 1e-6);
        assert!((q.f1 - 0.5).abs() < 1e-6);
        let none = report.evaluate(&[]);
        assert_eq!(none.recall, 0.0);
    }

    #[test]
    fn detect_and_filter_trains() {
        let (faulty, _, ctx) = setup();
        let mut fitted = DetectAndFilter::default().fit(ModelKind::ConvNet, &faulty, &ctx);
        let tt = DatasetKind::Cifar10.generate(Scale::Tiny, 8);
        let acc = fitted.accuracy(&tt.test);
        assert!(acc > 0.15, "accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn single_fold_rejected() {
        let _ = NoiseDetector::new(1, ModelKind::ConvNet);
    }

    #[test]
    fn class_starved_shard_does_not_break_thresholds() {
        // Sharding can starve a class entirely (satellite of the sharded-
        // training work): a dataset whose histogram has zero entries for
        // some class must still detect cleanly — the per-class threshold
        // guard maps empty classes to +inf instead of dividing by zero.
        let tt = DatasetKind::Cifar10.generate(Scale::Tiny, 14);
        let starved_idx: Vec<usize> = (0..tt.train.len())
            .filter(|&i| tt.train.labels()[i] != 0)
            .collect();
        let starved = tt.train.select(&starved_idx);
        assert_eq!(starved.class_histogram()[0], 0, "class 0 must be absent");
        let mut ctx = TrainContext::new(Scale::Tiny, 14);
        ctx.fit.epochs = 2;
        let report = NoiseDetector::default().detect(&starved, &ctx);
        assert!(report.thresholds[0].is_infinite());
        assert!(report.suspects.iter().all(|&s| s < starved.len()));
    }

    #[test]
    fn localizer_ranks_fully_flipped_holdout_first() {
        // Train a model on clean data, then hand the localizer holdout
        // shards where one shard's labels are all wrong: that shard's
        // disagreement must dominate.
        let tt = DatasetKind::Pneumonia.generate(Scale::Tiny, 15);
        let mut ctx = TrainContext::new(Scale::Tiny, 15);
        ctx.tune_for(tt.train.len());
        let mut fitted = Baseline.fit(ModelKind::ConvNet, &tt.train, &ctx);
        let FittedModel::Single(net) = &mut fitted else {
            panic!("baseline fits a single model");
        };
        let mut holdouts = tt.test.shards(4);
        let flipped: Vec<u32> = holdouts[2]
            .labels()
            .iter()
            .map(|&l| (l + 1) % holdouts[2].classes() as u32)
            .collect();
        holdouts[2] = holdouts[2].with_labels(flipped);
        let report = localize_faulty_shards(net, &holdouts);
        assert_eq!(report.top(), 2, "scores {:?}", report.scores);
        assert_eq!(report.suspects.len(), 4);
        assert!(report.scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn localizer_breaks_ties_by_ascending_shard() {
        // Identical shards score identically, so the ranking must fall
        // back to ascending shard index — the deterministic tie-break.
        let tt = DatasetKind::Pneumonia.generate(Scale::Tiny, 16);
        let mut ctx = TrainContext::new(Scale::Tiny, 16);
        ctx.fit.epochs = 1;
        let mut fitted = Baseline.fit(ModelKind::ConvNet, &tt.train, &ctx);
        let FittedModel::Single(net) = &mut fitted else {
            panic!("baseline fits a single model");
        };
        let shard = tt.test.shards(4).remove(0);
        let holdouts = vec![shard.clone(), shard.clone(), shard];
        let report = localize_faulty_shards(net, &holdouts);
        assert_eq!(report.suspects, vec![0, 1, 2]);
        assert_eq!(report.scores[0], report.scores[1]);
    }
}
