//! The model-fault experiment protocol (ROADMAP item 1): how well does
//! each mitigation technique tolerate SEU bit-flips in the *model*?
//!
//! The data-fault protocol of [`crate::experiment`] trains a technique on
//! faulty data and compares against a clean-trained golden model. The
//! model-fault protocol inverts the axes: every technique trains on
//! *clean* data, and faults strike the fitted model at inference time —
//! weight bits flipped in place (and reverted bit-exactly between trials,
//! exploiting the XOR involution) or activation bits flipped mid-forward
//! through the [`tdfm_nn::Network`] hook. The reference point is the
//! fitted model's own fault-free predictions, so the reported AD isolates
//! the damage the fault does, not the technique's clean-data skill.
//!
//! One technique fit is shared by every fault plan in a sweep — the
//! model-fault analogue of the golden cache: a sweep of `P` plans at `R`
//! repetitions costs `R` trainings per technique, not `P·R`.

use crate::experiment::run_indexed;
use crate::metrics::{accuracy, accuracy_delta, ConfidenceInterval};
use crate::technique::{FittedModel, TechniqueKind, TrainContext};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tdfm_data::{DatasetKind, LabeledDataset, Scale};
use tdfm_inject::model::{
    apply_weight_faults, counting_activation_hook, FaultSite, InjectionMode, ModelFaultPlan,
    TensorSelector,
};
use tdfm_inject::provenance::weight_provenance;
use tdfm_inject::{split_clean, ProvenanceBuilder};
use tdfm_json::json_struct;
use tdfm_nn::models::ModelKind;
use tdfm_obs::{event, Level, ManifestCell, ProvenanceRecord, RunManifest};
use tdfm_tensor::parallel::num_threads;

/// A model-fault sweep: every listed technique scored against every
/// listed fault plan, sharing one fit per (technique, repetition).
#[derive(Debug, Clone)]
pub struct ModelFaultSweep {
    /// Dataset techniques train on (clean — faults hit the model).
    pub dataset: DatasetKind,
    /// Architecture under study.
    pub model: ModelKind,
    /// Techniques to score (typically [`TechniqueKind::ALL_EXTENDED`]).
    pub techniques: Vec<TechniqueKind>,
    /// Fault plans to score each technique against.
    pub plans: Vec<ModelFaultPlan>,
    /// Experiment scale.
    pub scale: Scale,
    /// Repetitions per (technique, plan) cell.
    pub repetitions: usize,
    /// Base seed; repetition `r` derives its own seed exactly like the
    /// data-fault runner, and stochastic plans are re-seeded per
    /// repetition so fault sets are independent draws.
    pub seed: u64,
}

/// Raw outcome of one repetition of one (technique, plan) cell.
#[derive(Debug, Clone)]
pub struct ModelFaultRepetition {
    /// Fault-free test accuracy of the fitted model.
    pub clean_accuracy: f32,
    /// Test accuracy under the fault plan (mean over trials for
    /// exhaustive campaigns).
    pub faulty_accuracy: f32,
    /// Accuracy delta of the faulted model against its own fault-free
    /// predictions.
    pub accuracy_delta: f32,
    /// Weights driven non-finite by the applied flips (0 for activation
    /// plans, whose faults never persist in the model).
    pub made_nonfinite: usize,
}

json_struct!(ModelFaultRepetition {
    clean_accuracy,
    faulty_accuracy,
    accuracy_delta,
    made_nonfinite
});

/// Aggregated outcome of one (technique, plan) cell.
#[derive(Debug, Clone)]
pub struct ModelFaultResult {
    /// Dataset trained on.
    pub dataset: DatasetKind,
    /// Architecture under study.
    pub model: ModelKind,
    /// Technique protecting the model.
    pub technique: TechniqueKind,
    /// The fault plan's label (see [`ModelFaultPlan::label`]).
    pub fault_label: String,
    /// Experiment scale.
    pub scale: Scale,
    /// Base seed of the sweep.
    pub seed: u64,
    /// Per-repetition raw results.
    pub repetitions: Vec<ModelFaultRepetition>,
    /// Fault-free accuracy mean and 95% CI.
    pub clean_accuracy: ConfidenceInterval,
    /// Faulted accuracy mean and CI.
    pub faulty_accuracy: ConfidenceInterval,
    /// AD mean and CI.
    pub ad: ConfidenceInterval,
    /// Wall-clock spent scoring this cell's fault trials, seconds
    /// (training time is shared across the technique's cells and reported
    /// in the manifest metrics instead).
    pub wall_seconds: f64,
}

json_struct!(ModelFaultResult {
    dataset,
    model,
    technique,
    fault_label,
    scale,
    seed,
    repetitions,
    clean_accuracy,
    faulty_accuracy,
    ad,
    wall_seconds
});

impl ModelFaultResult {
    /// Serialises the result as pretty JSON.
    pub fn to_json(&self) -> String {
        tdfm_json::to_string_pretty(self)
    }

    /// Zeroes the wall-clock field — everything else is a deterministic
    /// function of the sweep, so normalised results diff byte-for-byte.
    pub fn normalize_timings(&mut self) {
        self.wall_seconds = 0.0;
    }
}

/// Runs model-fault sweeps, sharing one technique fit across fault plans.
///
/// Like [`crate::experiment::Runner`], each runner owns a private metrics
/// registry so fit counters and scoring timings stay exact when several
/// runners share a process; [`ModelFaultRunner::manifest`] snapshots it.
#[derive(Default)]
pub struct ModelFaultRunner {
    metrics: tdfm_obs::Registry,
    /// Model-fault provenance per cell identity (technique | fault
    /// label): which (tensor, bit) pairs the applied instances hit, and
    /// how many activation flips actually fired, summed over
    /// repetitions. [`ModelFaultRunner::manifest`] joins it with each
    /// cell's AD.
    provenance: Mutex<BTreeMap<String, ProvenanceBuilder>>,
}

/// The provenance-map key of a (technique, plan) cell.
fn cell_key(technique: TechniqueKind, fault_label: &str) -> String {
    format!("{}|{fault_label}", technique.full_name())
}

impl ModelFaultRunner {
    /// Creates a runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of technique fits performed (the sharing regression guard:
    /// a sweep costs `techniques × repetitions` fits however many plans
    /// it scores).
    pub fn technique_fits(&self) -> usize {
        self.metrics.counter("technique_fits").get() as usize
    }

    /// Snapshot of this runner's private metrics.
    pub fn metrics_snapshot(&self) -> tdfm_obs::MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Runs the sweep, returning one result per (technique, plan) pair in
    /// technique-major order.
    ///
    /// Techniques fan out across worker threads (they are independent);
    /// within a technique, repetitions run sequentially and every plan is
    /// scored against the same fitted model. Output is deterministic in
    /// the sweep's seeds — see [`ModelFaultResult::normalize_timings`].
    ///
    /// # Panics
    ///
    /// Panics if the sweep has no techniques, no plans or no repetitions.
    pub fn run_sweep(&self, sweep: &ModelFaultSweep) -> Vec<ModelFaultResult> {
        assert!(!sweep.techniques.is_empty(), "sweep needs techniques");
        assert!(!sweep.plans.is_empty(), "sweep needs fault plans");
        assert!(sweep.repetitions > 0, "need at least one repetition");
        let per_technique = run_indexed(sweep.techniques.len(), |t| {
            let kind = sweep.techniques[t];
            let started = Instant::now();
            let results = self.run_technique(sweep, kind);
            self.metrics
                .histogram("technique_seconds")
                .record(started.elapsed());
            event!(
                Level::Info,
                "model_fault_progress",
                technique = kind.full_name(),
                done = t + 1,
                total = sweep.techniques.len()
            );
            results
        });
        per_technique.into_iter().flatten().collect()
    }

    /// Fits `kind` once per repetition and scores every plan against it.
    fn run_technique(&self, sweep: &ModelFaultSweep, kind: TechniqueKind) -> Vec<ModelFaultResult> {
        let technique = kind.build();
        let mut reps_per_plan: Vec<Vec<ModelFaultRepetition>> =
            vec![Vec::with_capacity(sweep.repetitions); sweep.plans.len()];
        let mut walls = vec![0.0f64; sweep.plans.len()];
        let mut prov_per_plan = vec![ProvenanceBuilder::new(); sweep.plans.len()];
        for r in 0..sweep.repetitions {
            let rep_seed = sweep
                .seed
                .wrapping_add(1 + r as u64)
                .wrapping_mul(0x9E37_79B9);
            let data = sweep.dataset.generate(sweep.scale, rep_seed);
            let mut ctx = TrainContext::new(sweep.scale, rep_seed);
            ctx.tune_for(data.train.len());
            // Training data stays clean (faults hit the model), but label
            // correction still runs its clean-subset machinery.
            let train = if technique.wants_clean_subset() {
                let (clean, rest) = split_clean(&data.train, 0.1, rep_seed ^ 0xC1EA);
                ctx.clean_subset = Some(clean);
                rest
            } else {
                data.train.clone()
            };
            self.metrics.counter("technique_fits").inc();
            let mut fitted = technique.fit(sweep.model, &train, &ctx);
            let clean_preds = fitted.predict(data.test.images());
            let clean_accuracy = accuracy(&clean_preds, data.test.labels());
            for (p, plan) in sweep.plans.iter().enumerate() {
                let started = Instant::now();
                // Repetition r of plan p samples its own fault set; the
                // plan's original seed keeps distinct plans distinct.
                let plan = plan.clone().reseed(match plan.mode {
                    InjectionMode::Stochastic { seed, .. } => seed ^ rep_seed ^ ((p as u64) << 32),
                    InjectionMode::Exhaustive => 0,
                });
                let rep = match plan.site {
                    FaultSite::Weights => self.score_weight_plan(
                        &mut fitted,
                        &plan,
                        &data.test,
                        &clean_preds,
                        clean_accuracy,
                        &mut prov_per_plan[p],
                    ),
                    FaultSite::Activations => self.score_activation_plan(
                        &mut fitted,
                        &plan,
                        &data.test,
                        &clean_preds,
                        clean_accuracy,
                        &mut prov_per_plan[p],
                    ),
                };
                walls[p] += started.elapsed().as_secs_f64();
                reps_per_plan[p].push(rep);
            }
        }
        {
            let mut provenance = self.provenance.lock().expect("provenance lock poisoned");
            for (plan, prov) in sweep.plans.iter().zip(&prov_per_plan) {
                if !prov.is_empty() {
                    provenance
                        .entry(cell_key(kind, &plan.label()))
                        .or_default()
                        .extend(&prov.records());
                }
            }
        }
        sweep
            .plans
            .iter()
            .zip(reps_per_plan)
            .zip(walls)
            .map(|((plan, reps), wall_seconds)| {
                let clean: Vec<f32> = reps.iter().map(|r| r.clean_accuracy).collect();
                let faulty: Vec<f32> = reps.iter().map(|r| r.faulty_accuracy).collect();
                let ad: Vec<f32> = reps.iter().map(|r| r.accuracy_delta).collect();
                ModelFaultResult {
                    dataset: sweep.dataset,
                    model: sweep.model,
                    technique: kind,
                    fault_label: plan.label(),
                    scale: sweep.scale,
                    seed: sweep.seed,
                    clean_accuracy: ConfidenceInterval::t95(&clean),
                    faulty_accuracy: ConfidenceInterval::t95(&faulty),
                    ad: ConfidenceInterval::t95(&ad),
                    repetitions: reps,
                    wall_seconds,
                }
            })
            .collect()
    }

    /// Scores a weight plan: apply flips, predict, undo via XOR.
    ///
    /// Stochastic plans inject one independently-drawn fault set into
    /// *every* member network (an upset per replica — the pessimistic
    /// reading for ensembles). Exhaustive plans score every single-flip
    /// instance in turn and report the mean.
    fn score_weight_plan(
        &self,
        fitted: &mut FittedModel,
        plan: &ModelFaultPlan,
        test: &LabeledDataset,
        clean_preds: &[u32],
        clean_accuracy: f32,
        prov: &mut ProvenanceBuilder,
    ) -> ModelFaultRepetition {
        match plan.mode {
            InjectionMode::Exhaustive => {
                assert_eq!(
                    fitted.member_count(),
                    1,
                    "exhaustive weight campaigns require a single-model technique"
                );
                let instances = plan.weight_instances(fitted.networks_mut()[0]);
                prov.extend(&weight_provenance(&instances));
                let mut acc_sum = 0.0f64;
                let mut ad_sum = 0.0f64;
                let mut made_nonfinite = 0usize;
                for instance in &instances {
                    let report = apply_weight_faults(fitted.networks_mut()[0], instance);
                    made_nonfinite += report.made_nonfinite;
                    let preds = fitted.predict(test.images());
                    apply_weight_faults(fitted.networks_mut()[0], instance);
                    acc_sum += accuracy(&preds, test.labels()) as f64;
                    ad_sum += accuracy_delta(clean_preds, &preds, test.labels()) as f64;
                    self.metrics.counter("weight_trials").inc();
                }
                let k = instances.len() as f64;
                ModelFaultRepetition {
                    clean_accuracy,
                    faulty_accuracy: (acc_sum / k) as f32,
                    accuracy_delta: (ad_sum / k) as f32,
                    made_nonfinite,
                }
            }
            InjectionMode::Stochastic { seed, .. } => {
                let mut made_nonfinite = 0usize;
                let mut applied = Vec::new();
                for (m, net) in fitted.networks_mut().into_iter().enumerate() {
                    let member_plan = plan
                        .clone()
                        .reseed(seed ^ (m as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let instance = member_plan.weight_instances(net).swap_remove(0);
                    let report = apply_weight_faults(net, &instance);
                    made_nonfinite += report.made_nonfinite;
                    applied.push(instance);
                    self.metrics.counter("weight_trials").inc();
                }
                let preds = fitted.predict(test.images());
                for (net, instance) in fitted.networks_mut().into_iter().zip(&applied) {
                    apply_weight_faults(net, instance);
                }
                prov.extend(&weight_provenance(&applied));
                ModelFaultRepetition {
                    clean_accuracy,
                    faulty_accuracy: accuracy(&preds, test.labels()),
                    accuracy_delta: accuracy_delta(clean_preds, &preds, test.labels()),
                    made_nonfinite,
                }
            }
        }
    }

    /// Scores an activation plan: hook every member, predict, unhook.
    ///
    /// The hooks count the flips they actually inject (the activation
    /// fault space depends on the evaluation batching, so the count is
    /// only knowable at forward time); the total lands in `prov` keyed by
    /// the plan's layer scope and bit range.
    fn score_activation_plan(
        &self,
        fitted: &mut FittedModel,
        plan: &ModelFaultPlan,
        test: &LabeledDataset,
        clean_preds: &[u32],
        clean_accuracy: f32,
        prov: &mut ProvenanceBuilder,
    ) -> ModelFaultRepetition {
        let InjectionMode::Stochastic { seed, .. } = plan.mode else {
            panic!("activation fault spaces depend on the data; use stochastic mode")
        };
        let fired = Arc::new(AtomicU64::new(0));
        for (m, net) in fitted.networks_mut().into_iter().enumerate() {
            let member_plan = plan
                .clone()
                .reseed(seed ^ (m as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            net.set_activation_hook(counting_activation_hook(&member_plan, Arc::clone(&fired)));
        }
        let preds = fitted.predict(test.images());
        for net in fitted.networks_mut() {
            net.clear_activation_hook();
        }
        let target = match &plan.selector {
            TensorSelector::All => "all layers".to_string(),
            TensorSelector::Layers(l) => format!("layers{l:?}"),
            TensorSelector::Params(_) => unreachable!("rejected by the hook builder"),
        };
        prov.add(
            "bitflip",
            &target,
            plan.bits.lo(),
            plan.bits.hi(),
            "-",
            fired.load(Ordering::Relaxed),
        );
        self.metrics.counter("activation_trials").inc();
        ModelFaultRepetition {
            clean_accuracy,
            faulty_accuracy: accuracy(&preds, test.labels()),
            accuracy_delta: accuracy_delta(clean_preds, &preds, test.labels()),
            made_nonfinite: 0,
        }
    }

    /// Builds the run manifest for a batch of sweep results: one
    /// [`ManifestCell`] per (technique, plan) cell plus this runner's
    /// metrics merged with the process-global registry — the same shape
    /// [`crate::experiment::Runner::manifest`] produces, so `tdfm report`
    /// reads both.
    pub fn manifest(&self, name: &str, results: &[ModelFaultResult]) -> RunManifest {
        let scale = match results {
            [] => "-".to_string(),
            [first, rest @ ..] => {
                if rest.iter().any(|r| r.scale != first.scale) {
                    "mixed".to_string()
                } else {
                    first.scale.name().to_string()
                }
            }
        };
        let mut manifest = RunManifest::new(name, scale, num_threads());
        manifest.cells = results
            .iter()
            .enumerate()
            .map(|(index, result)| ManifestCell {
                index,
                dataset: result.dataset.name().to_string(),
                model: result.model.name().to_string(),
                technique: result.technique.full_name().to_string(),
                fault: result.fault_label.clone(),
                scale: result.scale.name().to_string(),
                repetitions: result.repetitions.len(),
                seed: result.seed,
                wall_seconds: result.wall_seconds,
            })
            .collect();
        let provenance = self.provenance.lock().expect("provenance lock poisoned");
        for (index, result) in results.iter().enumerate() {
            // tdfm-lint: allow(lock-held-across-call, cell_key is a pure string formatter)
            let Some(builder) = provenance.get(&cell_key(result.technique, &result.fault_label))
            else {
                continue;
            };
            let source = if result.fault_label.starts_with("activations") {
                "activations"
            } else {
                "weights"
            };
            // tdfm-lint: allow(lock-held-across-call, records() clones out of the builder without taking any lock)
            for r in builder.records() {
                manifest.provenance.push(ProvenanceRecord {
                    cell: index,
                    source: source.to_string(),
                    kind: r.kind,
                    target: r.target,
                    bit_lo: r.bit_lo,
                    bit_hi: r.bit_hi,
                    bucket: r.bucket,
                    count: r.count,
                    ad_mean: result.ad.mean as f64,
                });
            }
        }
        drop(provenance);
        let mut metrics = self.metrics.snapshot();
        metrics.merge(&tdfm_obs::global().snapshot());
        manifest.metrics = metrics;
        manifest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfm_inject::model::BitRange;

    fn tiny_sweep(techniques: Vec<TechniqueKind>, plans: Vec<ModelFaultPlan>) -> ModelFaultSweep {
        ModelFaultSweep {
            dataset: DatasetKind::Pneumonia,
            model: ModelKind::ConvNet,
            techniques,
            plans,
            scale: Scale::Tiny,
            repetitions: 2,
            seed: 42,
        }
    }

    fn low_mantissa_weights() -> ModelFaultPlan {
        ModelFaultPlan::weights()
            .bits(BitRange::new(0, 10))
            .mode(InjectionMode::Stochastic { flips: 1, seed: 7 })
    }

    #[test]
    fn sweep_is_technique_major_and_shares_fits() {
        let runner = ModelFaultRunner::new();
        let plans = vec![
            low_mantissa_weights(),
            ModelFaultPlan::activations().mode(InjectionMode::Stochastic { flips: 1, seed: 7 }),
        ];
        let sweep = tiny_sweep(
            vec![TechniqueKind::Baseline, TechniqueKind::LabelSmoothing],
            plans.clone(),
        );
        let results = runner.run_sweep(&sweep);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].technique, TechniqueKind::Baseline);
        assert_eq!(results[0].fault_label, plans[0].label());
        assert_eq!(results[1].fault_label, plans[1].label());
        assert_eq!(results[2].technique, TechniqueKind::LabelSmoothing);
        // One fit per (technique, repetition), however many plans.
        assert_eq!(runner.technique_fits(), 4);
        for result in &results {
            assert_eq!(result.repetitions.len(), 2);
            assert!((0.0..=1.0).contains(&result.ad.mean));
            assert!((0.0..=1.0).contains(&result.clean_accuracy.mean));
        }
    }

    #[test]
    fn low_mantissa_flip_is_benign() {
        let runner = ModelFaultRunner::new();
        let sweep = tiny_sweep(vec![TechniqueKind::Baseline], vec![low_mantissa_weights()]);
        let result = &runner.run_sweep(&sweep)[0];
        // A single low-mantissa flip perturbs one weight by < 0.05%: the
        // model's predictions cannot move.
        assert_eq!(result.ad.mean, 0.0, "AD {}", result.ad.mean);
        assert_eq!(result.faulty_accuracy.mean, result.clean_accuracy.mean);
    }

    #[test]
    fn sweeps_are_deterministic() {
        let plans = vec![
            ModelFaultPlan::weights().mode(InjectionMode::Stochastic { flips: 4, seed: 3 }),
            ModelFaultPlan::activations()
                .bits(BitRange::EXPONENT)
                .mode(InjectionMode::Stochastic { flips: 2, seed: 3 }),
        ];
        let sweep = tiny_sweep(vec![TechniqueKind::Baseline], plans);
        let run = || {
            let mut results = ModelFaultRunner::new().run_sweep(&sweep);
            for r in &mut results {
                r.normalize_timings();
            }
            results.iter().map(|r| r.to_json()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn weight_faults_are_undone_between_plans() {
        // A catastrophic plan scored before a benign plan must not leak
        // flipped bits into the benign plan's trials: the benign result
        // matches a sweep that never saw the catastrophic plan.
        let catastrophic = ModelFaultPlan::weights()
            .bits(BitRange::EXPONENT)
            .mode(InjectionMode::Stochastic { flips: 16, seed: 1 });
        let both = tiny_sweep(
            vec![TechniqueKind::Baseline],
            vec![catastrophic, low_mantissa_weights()],
        );
        let alone = tiny_sweep(vec![TechniqueKind::Baseline], vec![low_mantissa_weights()]);
        let from_both = &ModelFaultRunner::new().run_sweep(&both)[1];
        let from_alone = &ModelFaultRunner::new().run_sweep(&alone)[0];
        assert_eq!(
            from_both.faulty_accuracy.mean,
            from_alone.faulty_accuracy.mean
        );
        assert_eq!(from_both.ad.mean, from_alone.ad.mean);
    }

    #[test]
    fn exhaustive_campaign_scores_every_instance() {
        let runner = ModelFaultRunner::new();
        // Sign-bit-only campaign over one small parameter tensor keeps the
        // instance count bounded while exercising the exhaustive path.
        let plan = ModelFaultPlan::weights()
            .select(tdfm_inject::model::TensorSelector::Params(vec![1]))
            .bits(BitRange::new(31, 31))
            .mode(InjectionMode::Exhaustive);
        let mut sweep = tiny_sweep(vec![TechniqueKind::Baseline], vec![plan]);
        sweep.repetitions = 1;
        let results = runner.run_sweep(&sweep);
        assert_eq!(results.len(), 1);
        let trials = runner.metrics_snapshot().counter("weight_trials");
        assert!(trials.unwrap_or(0) > 0, "no trials recorded");
        assert!((0.0..=1.0).contains(&results[0].faulty_accuracy.mean));
    }

    #[test]
    fn manifest_records_weight_and_activation_provenance() {
        let runner = ModelFaultRunner::new();
        let plans = vec![
            ModelFaultPlan::weights()
                .bits(BitRange::EXPONENT)
                .mode(InjectionMode::Stochastic { flips: 3, seed: 7 }),
            ModelFaultPlan::activations().mode(InjectionMode::Stochastic { flips: 2, seed: 7 }),
        ];
        let sweep = tiny_sweep(vec![TechniqueKind::Baseline], plans);
        let results = runner.run_sweep(&sweep);
        let manifest = runner.manifest("unit", &results);

        let weight: Vec<_> = manifest
            .provenance
            .iter()
            .filter(|r| r.source == "weights")
            .collect();
        let activation: Vec<_> = manifest
            .provenance
            .iter()
            .filter(|r| r.source == "activations")
            .collect();
        assert!(!weight.is_empty() && !activation.is_empty());

        // Weight records: one per (tensor, bit) hit; 3 flips x 2 reps.
        assert!(weight.iter().all(|r| r.cell == 0
            && r.kind == "bitflip"
            && r.target.starts_with("tensor ")
            && (23..=30).contains(&r.bit_lo)
            && r.bit_lo == r.bit_hi));
        assert_eq!(weight.iter().map(|r| r.count).sum::<u64>(), 3 * 2);

        // Activation records: the counted flips that actually fired.
        assert!(activation.iter().all(|r| r.cell == 1
            && r.kind == "bitflip"
            && r.target == "all layers"
            && (r.bit_lo, r.bit_hi) == (0, 31)
            && r.count > 0));
        // Each cell's records carry that cell's AD.
        for r in &manifest.provenance {
            assert_eq!(r.ad_mean, results[r.cell].ad.mean as f64);
        }
    }

    #[test]
    fn results_round_trip_through_json_and_manifest() {
        let runner = ModelFaultRunner::new();
        let sweep = tiny_sweep(vec![TechniqueKind::Baseline], vec![low_mantissa_weights()]);
        let results = runner.run_sweep(&sweep);
        let json = tdfm_json::to_string_pretty(&results);
        let back: Vec<ModelFaultResult> = tdfm_json::from_str(&json).unwrap();
        assert_eq!(back.len(), results.len());
        assert_eq!(back[0].fault_label, results[0].fault_label);
        assert_eq!(back[0].ad.mean, results[0].ad.mean);

        let manifest = runner.manifest("unit", &results);
        assert_eq!(manifest.name, "unit");
        assert_eq!(manifest.scale, "tiny");
        assert_eq!(manifest.cells.len(), 1);
        assert_eq!(manifest.cells[0].technique, "Baseline");
        assert_eq!(manifest.cells[0].fault, results[0].fault_label);
        assert_eq!(manifest.metrics.counter("technique_fits"), Some(2));
    }
}
