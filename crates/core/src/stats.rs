//! Statistical machinery behind the paper's claims: Welch's t-test for
//! "statistically similar" comparisons (Section IV-C) and the special
//! functions it needs.
//!
//! The paper reports combined-fault ADs as "statistically similar" to
//! single-fault ADs. Confidence-interval overlap (the figures' error bars)
//! is a coarse version of that; this module provides the real two-sample
//! Welch test with p-values so the `fault_combos` harness can report both.

use tdfm_json::json_struct;

/// Result of a two-sample Welch t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchTest {
    /// The t statistic.
    pub t: f32,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f32,
    /// Two-sided p-value.
    pub p_value: f32,
}

json_struct!(WelchTest { t, df, p_value });

impl WelchTest {
    /// `true` when the difference is *not* significant at the given level
    /// (the paper's "statistically similar").
    pub fn similar_at(&self, alpha: f32) -> bool {
        self.p_value >= alpha
    }
}

/// Natural log of the gamma function (Lanczos approximation).
///
/// Accurate to ~1e-7 over the range the t-distribution needs.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised incomplete beta function `I_x(a, b)` via the continued
/// fraction of Numerical Recipes.
///
/// # Panics
///
/// Panics unless `0 <= x <= 1` and `a, b > 0`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1]");
    assert!(a > 0.0 && b > 0.0, "a and b must be positive");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation for faster convergence.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - incomplete_beta(b, a, 1.0 - x)
    }
}

/// Continued fraction for the incomplete beta (Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 1e-12;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value of a t statistic with `df` degrees of freedom.
///
/// # Panics
///
/// Panics unless `df > 0`.
pub fn t_two_sided_p(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Two-sample Welch t-test (unequal variances).
///
/// Degenerate inputs (fewer than two samples on either side, or both
/// variances zero) yield `p = 1` when the means are equal and `p = 0`
/// otherwise, which is the practical reading for deterministic repeats.
pub fn welch_t_test(a: &[f32], b: &[f32]) -> WelchTest {
    let mean = |v: &[f32]| v.iter().sum::<f32>() as f64 / v.len() as f64;
    let var = |v: &[f32], m: f64| {
        if v.len() < 2 {
            0.0
        } else {
            v.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / (v.len() as f64 - 1.0)
        }
    };
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (var(a, ma), var(b, mb));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 || a.len() < 2 || b.len() < 2 {
        let equal = (ma - mb).abs() < 1e-12;
        return WelchTest {
            t: if equal { 0.0 } else { f32::INFINITY },
            df: 1.0,
            p_value: if equal { 1.0 } else { 0.0 },
        };
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    WelchTest {
        t: t as f32,
        df: df as f32,
        p_value: t_two_sided_p(t, df) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Gamma(1) = 1, Gamma(2) = 1, Gamma(5) = 24, Gamma(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-9);
        assert!(ln_gamma(2.0).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a, b) = 1 - I_{1-x}(b, a).
        let x = 0.37;
        let lhs = incomplete_beta(2.5, 1.5, x);
        let rhs = 1.0 - incomplete_beta(1.5, 2.5, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-10);
        // I_x(1, 1) = x (uniform distribution).
        assert!((incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-10);
    }

    #[test]
    fn t_p_values_match_tables() {
        // t = 2.776, df = 4 is the 95% two-sided critical value.
        let p = t_two_sided_p(2.776, 4.0);
        assert!((p - 0.05).abs() < 2e-3, "p {p}");
        // t = 1.96, df -> large approaches 0.05.
        let p = t_two_sided_p(1.96, 1000.0);
        assert!((p - 0.05).abs() < 2e-3, "p {p}");
        // t = 0 means p = 1.
        assert!((t_two_sided_p(0.0, 5.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn welch_detects_clear_difference() {
        let a = [1.0f32, 1.1, 0.9, 1.05, 0.95];
        let b = [2.0f32, 2.1, 1.9, 2.05, 1.95];
        let result = welch_t_test(&a, &b);
        assert!(result.p_value < 0.001, "p {}", result.p_value);
        assert!(!result.similar_at(0.05));
    }

    #[test]
    fn welch_accepts_same_distribution() {
        let a = [0.50f32, 0.52, 0.48, 0.51, 0.49];
        let b = [0.51f32, 0.49, 0.52, 0.50, 0.48];
        let result = welch_t_test(&a, &b);
        assert!(result.p_value > 0.2, "p {}", result.p_value);
        assert!(result.similar_at(0.05));
    }

    #[test]
    fn welch_handles_degenerate_inputs() {
        let same = welch_t_test(&[0.5], &[0.5]);
        assert_eq!(same.p_value, 1.0);
        let diff = welch_t_test(&[0.5], &[0.9]);
        assert_eq!(diff.p_value, 0.0);
        // Zero variance both sides, equal means.
        let zv = welch_t_test(&[0.3, 0.3], &[0.3, 0.3]);
        assert_eq!(zv.p_value, 1.0);
    }

    #[test]
    fn welch_df_between_bounds() {
        // Welch df lies between min(na, nb) - 1 and na + nb - 2.
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [1.5f32, 2.5, 3.5];
        let result = welch_t_test(&a, &b);
        assert!(result.df >= 2.0 - 1e-3);
        assert!(result.df <= 5.0 + 1e-3);
    }
}
