//! Reliability metrics: accuracy, accuracy delta (AD) and confidence
//! intervals (paper Section III-C, Fig. 2).

use tdfm_json::json_struct;

/// Fraction of predictions equal to the labels.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(predictions: &[u32], labels: &[u32]) -> f32 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "prediction/label count mismatch"
    );
    assert!(!labels.is_empty(), "accuracy of an empty set is undefined");
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

/// The paper's **accuracy delta** (AD): among test images the *golden*
/// model classifies correctly, the fraction the *faulty* model gets wrong.
///
/// Lower is better; a perfectly resilient technique has AD = 0. Unlike a
/// plain accuracy difference, AD does not double-count images both models
/// misclassify (Section III-C).
///
/// Returns 0 when the golden model classifies nothing correctly (no basis
/// for comparison).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Examples
///
/// ```
/// use tdfm_core::accuracy_delta;
///
/// let labels = [0, 1, 2, 3];
/// let golden = [0, 1, 2, 9]; // golden correct on first three
/// let faulty = [0, 9, 9, 3]; // faulty wrong on two of those
/// assert!((accuracy_delta(&golden, &faulty, &labels) - 2.0 / 3.0).abs() < 1e-6);
/// ```
pub fn accuracy_delta(golden: &[u32], faulty: &[u32], labels: &[u32]) -> f32 {
    assert_eq!(golden.len(), labels.len(), "golden/label count mismatch");
    assert_eq!(faulty.len(), labels.len(), "faulty/label count mismatch");
    assert!(!labels.is_empty(), "AD of an empty set is undefined");
    let mut golden_correct = 0usize;
    let mut now_wrong = 0usize;
    for ((&g, &f), &l) in golden.iter().zip(faulty).zip(labels) {
        if g == l {
            golden_correct += 1;
            if f != l {
                now_wrong += 1;
            }
        }
    }
    if golden_correct == 0 {
        return 0.0;
    }
    now_wrong as f32 / golden_correct as f32
}

/// A full confusion matrix: `counts[actual][predicted]`.
///
/// The paper's Fig. 1 discussion — pneumonia read as normal, normal read
/// as pneumonia — is a statement about specific confusion-matrix cells;
/// this type makes those analyses first-class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

json_struct!(ConfusionMatrix { classes, counts });

impl ConfusionMatrix {
    /// Builds the matrix from predictions and labels.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any value is `>= classes`.
    pub fn new(predictions: &[u32], labels: &[u32], classes: usize) -> Self {
        assert_eq!(
            predictions.len(),
            labels.len(),
            "prediction/label count mismatch"
        );
        assert!(classes > 0, "need at least one class");
        let mut counts = vec![0usize; classes * classes];
        for (&p, &l) in predictions.iter().zip(labels) {
            assert!((p as usize) < classes, "prediction {p} out of range");
            assert!((l as usize) < classes, "label {l} out of range");
            counts[l as usize * classes + p as usize] += 1;
        }
        Self { classes, counts }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count of samples with true class `actual` predicted as `predicted`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        assert!(
            actual < self.classes && predicted < self.classes,
            "class out of range"
        );
        self.counts[actual * self.classes + predicted]
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy (trace over total).
    pub fn accuracy(&self) -> f32 {
        let correct: usize = (0..self.classes).map(|k| self.count(k, k)).sum();
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        correct as f32 / total as f32
    }

    /// Recall of class `k` (`None` when the class has no samples).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn recall(&self, k: usize) -> Option<f32> {
        let row: usize = (0..self.classes).map(|j| self.count(k, j)).sum();
        if row == 0 {
            return None;
        }
        Some(self.count(k, k) as f32 / row as f32)
    }

    /// Precision of class `k` (`None` when the class is never predicted).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn precision(&self, k: usize) -> Option<f32> {
        let col: usize = (0..self.classes).map(|i| self.count(i, k)).sum();
        if col == 0 {
            return None;
        }
        Some(self.count(k, k) as f32 / col as f32)
    }

    /// The `(actual, predicted, count)` off-diagonal cells, most frequent
    /// first — "what does the faulty model confuse with what".
    pub fn top_confusions(&self, limit: usize) -> Vec<(usize, usize, usize)> {
        let mut cells: Vec<(usize, usize, usize)> = (0..self.classes)
            .flat_map(|a| (0..self.classes).map(move |p| (a, p)))
            .filter(|&(a, p)| a != p)
            .map(|(a, p)| (a, p, self.count(a, p)))
            .filter(|&(_, _, c)| c > 0)
            .collect();
        cells.sort_by(|x, y| y.2.cmp(&x.2).then_with(|| (x.0, x.1).cmp(&(y.0, y.1))));
        cells.truncate(limit);
        cells
    }
}

/// A mean with a 95% Student-t confidence half-width — the error bars on
/// every figure of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f32,
    /// Half-width of the 95% interval (0 for a single sample).
    pub half_width: f32,
}

json_struct!(ConfidenceInterval { mean, half_width });

/// Two-sided 97.5% Student-t quantiles for small degrees of freedom.
const T_975: [f32; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

impl ConfidenceInterval {
    /// Computes the mean and 95% t-interval of a sample.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn t95(samples: &[f32]) -> Self {
        assert!(
            !samples.is_empty(),
            "confidence interval of an empty sample"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f32>() / n as f32;
        if n == 1 {
            return Self {
                mean,
                half_width: 0.0,
            };
        }
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / (n as f32 - 1.0);
        let t = if n - 1 <= 30 { T_975[n - 2] } else { 1.96 };
        Self {
            mean,
            half_width: t * (var / n as f32).sqrt(),
        }
    }

    /// `true` when `other`'s interval overlaps this one — the paper's
    /// "statistically similar" test in Section IV-C.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        (self.mean - other.mean).abs() <= self.half_width + other.half_width
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[1, 2, 3], &[3, 2, 1]), 1.0 / 3.0);
        assert_eq!(accuracy(&[0, 0], &[1, 1]), 0.0);
    }

    #[test]
    fn ad_matches_fig2_definition() {
        let labels = [0u32, 1, 2, 3, 4];
        let golden = [0u32, 1, 2, 9, 9]; // correct on 3
        let faulty = [9u32, 1, 9, 3, 4]; // wrong on 2 of the golden-correct
        assert!((accuracy_delta(&golden, &faulty, &labels) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn ad_ignores_images_both_models_miss() {
        let labels = [0u32, 1];
        let golden = [9u32, 1];
        let faulty = [8u32, 1]; // both wrong on image 0 -> not counted
        assert_eq!(accuracy_delta(&golden, &faulty, &labels), 0.0);
    }

    #[test]
    fn ad_zero_when_golden_useless() {
        let labels = [0u32, 1];
        assert_eq!(accuracy_delta(&[9, 9], &[0, 1], &labels), 0.0);
    }

    #[test]
    fn identical_models_have_zero_ad() {
        let labels = [0u32, 1, 2];
        let preds = [0u32, 9, 2];
        assert_eq!(accuracy_delta(&preds, &preds, &labels), 0.0);
    }

    #[test]
    fn ci_single_sample_has_zero_width() {
        let ci = ConfidenceInterval::t95(&[0.5]);
        assert_eq!(ci.mean, 0.5);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn ci_matches_hand_computed_t_interval() {
        // Samples 1..=5: mean 3, sd sqrt(2.5), t_{0.975,4} = 2.776.
        let ci = ConfidenceInterval::t95(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((ci.mean - 3.0).abs() < 1e-6);
        let expect = 2.776 * (2.5f32 / 5.0).sqrt();
        assert!((ci.half_width - expect).abs() < 1e-3);
    }

    #[test]
    fn overlap_detection() {
        let a = ConfidenceInterval {
            mean: 0.5,
            half_width: 0.1,
        };
        let b = ConfidenceInterval {
            mean: 0.65,
            half_width: 0.1,
        };
        let c = ConfidenceInterval {
            mean: 0.9,
            half_width: 0.1,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn confusion_matrix_counts_cells() {
        let labels = [0u32, 0, 1, 1, 1];
        let preds = [0u32, 1, 1, 1, 0];
        let m = ConfusionMatrix::new(&preds, &labels, 2);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 1), 2);
        assert_eq!(m.count(1, 0), 1);
        assert_eq!(m.total(), 5);
        assert!((m.accuracy() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn recall_and_precision() {
        let labels = [0u32, 0, 1, 1, 1, 2];
        let preds = [0u32, 1, 1, 1, 0, 0];
        let m = ConfusionMatrix::new(&preds, &labels, 3);
        assert!((m.recall(0).unwrap() - 0.5).abs() < 1e-6);
        assert!((m.recall(1).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(m.recall(2).unwrap(), 0.0);
        // Class 2 is never predicted.
        assert!(m.precision(2).is_none());
        assert!((m.precision(1).unwrap() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn top_confusions_ranked() {
        let labels = [0u32, 0, 0, 1, 1, 2];
        let preds = [1u32, 1, 2, 0, 0, 2];
        let m = ConfusionMatrix::new(&preds, &labels, 3);
        let top = m.top_confusions(2);
        assert_eq!(top[0].2, 2);
        assert!(top[0] == (0, 1, 2) || top[0] == (1, 0, 2));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn confusion_accuracy_matches_plain_accuracy() {
        let labels = [0u32, 1, 2, 1, 0];
        let preds = [0u32, 2, 2, 1, 1];
        let m = ConfusionMatrix::new(&preds, &labels, 3);
        assert!((m.accuracy() - accuracy(&preds, &labels)).abs() < 1e-6);
    }

    #[test]
    fn confusion_diagonal_counts_correct() {
        // Deterministic sweep standing in for the previous property test.
        for seed in 0..64u64 {
            let n = 1 + (seed as usize * 13) % 59;
            let mut rng = tdfm_tensor::rng::Rng::seed_from(seed);
            let labels: Vec<u32> = (0..n).map(|_| rng.below(3) as u32).collect();
            let preds: Vec<u32> = (0..n).map(|_| rng.below(3) as u32).collect();
            let m = ConfusionMatrix::new(&preds, &labels, 3);
            assert_eq!(m.total(), n);
            assert!((m.accuracy() - accuracy(&preds, &labels)).abs() < 1e-6);
        }
    }

    #[test]
    fn ad_is_a_probability() {
        for seed in 0..128u64 {
            let n = 1 + (seed as usize * 17) % 49;
            let mut rng = tdfm_tensor::rng::Rng::seed_from(seed);
            let labels: Vec<u32> = (0..n).map(|_| rng.below(4) as u32).collect();
            let golden: Vec<u32> = (0..n).map(|_| rng.below(4) as u32).collect();
            let faulty: Vec<u32> = (0..n).map(|_| rng.below(4) as u32).collect();
            let ad = accuracy_delta(&golden, &faulty, &labels);
            assert!((0.0..=1.0).contains(&ad));
        }
    }

    #[test]
    fn ci_mean_is_sample_mean() {
        for seed in 0..64u64 {
            let n = 1 + (seed as usize) % 19;
            let mut rng = tdfm_tensor::rng::Rng::seed_from(seed ^ 0xC1);
            let v: Vec<f32> = (0..n).map(|_| rng.unit()).collect();
            let ci = ConfidenceInterval::t95(&v);
            let mean = v.iter().sum::<f32>() / v.len() as f32;
            assert!((ci.mean - mean).abs() < 1e-5);
            assert!(ci.half_width >= 0.0);
        }
    }
}
