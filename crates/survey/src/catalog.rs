//! The candidate-technique catalogue (Table I of the paper).

use tdfm_json::{json_struct_to, json_unit_enum};

/// The five TDFM approaches (Section I-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Softens one-hot targets (Section III-B1).
    LabelSmoothing,
    /// Meta-learning that corrects faulty labels during training (III-B2).
    LabelCorrection,
    /// Noise-robust training criteria (III-B3).
    RobustLoss,
    /// Teacher/student training (III-B4).
    KnowledgeDistillation,
    /// Majority voting over several models (III-B5).
    Ensemble,
}

impl Approach {
    /// All approaches in Table I order.
    pub const ALL: [Approach; 5] = [
        Approach::LabelSmoothing,
        Approach::LabelCorrection,
        Approach::RobustLoss,
        Approach::KnowledgeDistillation,
        Approach::Ensemble,
    ];

    /// Name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Approach::LabelSmoothing => "Label Smoothing",
            Approach::LabelCorrection => "Label Correction",
            Approach::RobustLoss => "Robust Loss",
            Approach::KnowledgeDistillation => "Knowledge Distillation",
            Approach::Ensemble => "Ensemble",
        }
    }
}

impl std::fmt::Display for Approach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The five selection criteria of Section III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Criteria {
    /// (1) Code is available and easily modifiable.
    pub code_available: bool,
    /// (2) Evaluated on more than one architecture type and dataset.
    pub architecture_agnostic: bool,
    /// (3) Capable of tolerating artificial noise.
    pub artificial_noise: bool,
    /// (4) Does not rely on pre-trained weights.
    pub not_pretrained: bool,
    /// (5) Standalone (not a combination of other techniques).
    pub standalone: bool,
}

impl Criteria {
    /// `true` when all five criteria are met (the starring rule).
    pub fn meets_all(&self) -> bool {
        self.code_available
            && self.architecture_agnostic
            && self.artificial_noise
            && self.not_pretrained
            && self.standalone
    }

    /// Number of criteria met (for ranking near-misses).
    pub fn score(&self) -> usize {
        [
            self.code_available,
            self.architecture_agnostic,
            self.artificial_noise,
            self.not_pretrained,
            self.standalone,
        ]
        .iter()
        .filter(|&&b| b)
        .count()
    }
}

/// One candidate row of Table I.
#[derive(Debug, Clone)]
pub struct Technique {
    /// Technique name as printed in the paper.
    pub name: &'static str,
    /// Citation key in the paper's bibliography.
    pub reference: &'static str,
    /// Which approach the technique belongs to.
    pub approach: Approach,
    /// The five criteria columns.
    pub criteria: Criteria,
    /// Starred in Table I (meets every criterion).
    pub starred: bool,
    /// The paper re-implemented this candidate as the approach's
    /// representative because no candidate met every criterion.
    pub reimplemented: bool,
}

json_unit_enum!(Approach {
    LabelSmoothing,
    LabelCorrection,
    RobustLoss,
    KnowledgeDistillation,
    Ensemble
});
json_struct_to!(Criteria {
    code_available,
    architecture_agnostic,
    artificial_noise,
    not_pretrained,
    standalone
});
json_struct_to!(Technique {
    name,
    reference,
    approach,
    criteria,
    starred,
    reimplemented
});

const fn crit(c: bool, a: bool, n: bool, p: bool, s: bool) -> Criteria {
    Criteria {
        code_available: c,
        architecture_agnostic: a,
        artificial_noise: n,
        not_pretrained: p,
        standalone: s,
    }
}

/// The full Table I catalogue: three candidates per approach.
pub fn catalog() -> Vec<Technique> {
    vec![
        // Label Smoothing.
        Technique {
            name: "Label Relaxation",
            reference: "[16]",
            approach: Approach::LabelSmoothing,
            criteria: crit(true, true, true, true, true),
            starred: true,
            reimplemented: false,
        },
        Technique {
            name: "Lukasik et al.",
            reference: "[27]",
            approach: Approach::LabelSmoothing,
            criteria: crit(false, false, true, true, false),
            starred: false,
            reimplemented: false,
        },
        Technique {
            name: "OLS",
            reference: "[28]",
            approach: Approach::LabelSmoothing,
            criteria: crit(false, true, true, true, true),
            starred: false,
            reimplemented: false,
        },
        // Label Correction.
        Technique {
            name: "Meta Label Correction",
            reference: "[17]",
            approach: Approach::LabelCorrection,
            criteria: crit(true, true, true, true, true),
            starred: true,
            reimplemented: false,
        },
        Technique {
            name: "ProSelfLC",
            reference: "[29]",
            approach: Approach::LabelCorrection,
            criteria: crit(false, false, true, true, true),
            starred: false,
            reimplemented: false,
        },
        Technique {
            name: "SMP",
            reference: "[30]",
            approach: Approach::LabelCorrection,
            criteria: crit(true, false, false, false, true),
            starred: false,
            reimplemented: false,
        },
        // Robust Loss.
        Technique {
            name: "Active-Passive Losses",
            reference: "[18]",
            approach: Approach::RobustLoss,
            criteria: crit(true, true, true, true, true),
            starred: true,
            reimplemented: false,
        },
        Technique {
            name: "Charoenphakdee et al.",
            reference: "[31]",
            approach: Approach::RobustLoss,
            criteria: crit(true, false, true, true, true),
            starred: false,
            reimplemented: false,
        },
        Technique {
            name: "Zhang et al.",
            reference: "[32]",
            approach: Approach::RobustLoss,
            criteria: crit(true, false, true, true, true),
            starred: false,
            reimplemented: false,
        },
        // Knowledge Distillation (no candidate meets all criteria; the
        // paper re-implemented self distillation in its own framework).
        Technique {
            name: "CMD-P",
            reference: "[33]",
            approach: Approach::KnowledgeDistillation,
            criteria: crit(false, true, true, false, true),
            starred: false,
            reimplemented: false,
        },
        Technique {
            name: "KD-Lib",
            reference: "[34]",
            approach: Approach::KnowledgeDistillation,
            criteria: crit(true, true, false, true, false),
            starred: false,
            reimplemented: false,
        },
        Technique {
            name: "Self Distillation",
            reference: "[19]",
            approach: Approach::KnowledgeDistillation,
            criteria: crit(true, true, false, true, true),
            starred: false,
            reimplemented: true,
        },
        // Ensemble (likewise re-implemented).
        Technique {
            name: "LTEC",
            reference: "[35]",
            approach: Approach::Ensemble,
            criteria: crit(true, false, true, true, true),
            starred: false,
            reimplemented: true,
        },
        Technique {
            name: "SELF",
            reference: "[36]",
            approach: Approach::Ensemble,
            criteria: crit(false, false, true, true, false),
            starred: false,
            reimplemented: false,
        },
        Technique {
            name: "Super-Learner",
            reference: "[20]",
            approach: Approach::Ensemble,
            criteria: crit(false, true, false, true, true),
            starred: false,
            reimplemented: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_fifteen_rows() {
        assert_eq!(catalog().len(), 15);
    }

    #[test]
    fn three_techniques_meet_all_criteria() {
        let full: Vec<&'static str> = catalog()
            .iter()
            .filter(|t| t.criteria.meets_all())
            .map(|t| t.name)
            .collect();
        assert_eq!(
            full,
            vec![
                "Label Relaxation",
                "Meta Label Correction",
                "Active-Passive Losses"
            ]
        );
    }

    #[test]
    fn criteria_score_counts() {
        assert_eq!(crit(true, true, true, true, true).score(), 5);
        assert_eq!(crit(true, false, true, false, true).score(), 3);
        assert_eq!(crit(false, false, false, false, false).score(), 0);
    }

    #[test]
    fn kd_and_ensemble_have_reimplemented_fallbacks() {
        let cat = catalog();
        for approach in [Approach::KnowledgeDistillation, Approach::Ensemble] {
            assert!(cat
                .iter()
                .any(|t| t.approach == approach && t.reimplemented));
            assert!(!cat
                .iter()
                .any(|t| t.approach == approach && t.criteria.meets_all()));
        }
    }
}
