//! ASCII rendering of Table I.

use crate::{Approach, Technique};

fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Renders Table I as fixed-width ASCII, one approach section at a time,
/// with representatives marked `*` exactly as in the paper.
pub fn render_table_i(techniques: &[Technique]) -> String {
    let mut out = String::new();
    out.push_str(
        "TABLE I: Top three techniques for the five TDFM approaches \
         (representatives marked *)\n",
    );
    out.push_str(&format!(
        "{:<24}{:<28}{:>6}{:>12}{:>8}{:>14}{:>12}\n",
        "Approach", "Technique", "Code?", "ArchAgn?", "Noise?", "NotPreTrain?", "Standalone?"
    ));
    out.push_str(&"-".repeat(104));
    out.push('\n');
    for approach in Approach::ALL {
        for t in techniques.iter().filter(|t| t.approach == approach) {
            let star = if t.starred || t.reimplemented {
                "*"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:<24}{:<28}{:>6}{:>12}{:>8}{:>14}{:>12}\n",
                approach.name(),
                format!("{}{} {}", t.name, star, t.reference),
                tick(t.criteria.code_available),
                tick(t.criteria.architecture_agnostic),
                tick(t.criteria.artificial_noise),
                tick(t.criteria.not_pretrained),
                tick(t.criteria.standalone),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn render_contains_all_rows() {
        let s = render_table_i(&catalog());
        for t in catalog() {
            assert!(s.contains(t.name), "missing {}", t.name);
        }
        // 15 technique rows + 3 header lines.
        assert_eq!(s.lines().count(), 18);
    }

    #[test]
    fn representatives_are_starred_in_output() {
        let s = render_table_i(&catalog());
        assert!(s.contains("Label Relaxation* [16]"));
        assert!(s.contains("Self Distillation* [19]"));
        assert!(s.contains("LTEC* [35]"));
    }
}
