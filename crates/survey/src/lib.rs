#![forbid(unsafe_code)]
//! # tdfm-survey
//!
//! A machine-readable encoding of the paper's survey (Section III-A and
//! Table I): the top-three candidate techniques per TDFM approach, the five
//! selection criteria, and the selection rule that picks exactly one
//! representative technique per approach.
//!
//! The paper surveyed ~200 articles, shortlisted ~50 and kept the five
//! starred rows of Table I; this crate encodes the shortlist's top three
//! per approach so the table — and the selection logic behind it — can be
//! regenerated and tested.
//!
//! # Examples
//!
//! ```
//! use tdfm_survey::{catalog, select_representatives};
//!
//! let cat = catalog();
//! let reps = select_representatives(&cat);
//! assert_eq!(reps.len(), 5);
//! assert!(reps.iter().any(|t| t.name == "Label Relaxation"));
//! ```

mod catalog;
mod render;

pub use catalog::{catalog, Approach, Criteria, Technique};
pub use render::render_table_i;

/// Applies the paper's selection rule: per approach, the first technique
/// meeting **all five** criteria is the representative. Approaches with no
/// such technique (Knowledge Distillation and Ensembles in the paper) fall
/// back to a re-implementation of the best candidate — represented here by
/// the candidate marked [`Technique::reimplemented`].
pub fn select_representatives(techniques: &[Technique]) -> Vec<&Technique> {
    let mut reps = Vec::new();
    for approach in Approach::ALL {
        let candidates: Vec<&Technique> = techniques
            .iter()
            .filter(|t| t.approach == approach)
            .collect();
        let pick = candidates
            .iter()
            .find(|t| t.criteria.meets_all())
            .or_else(|| candidates.iter().find(|t| t.reimplemented))
            .copied();
        if let Some(t) = pick {
            reps.push(t);
        }
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_five_representatives() {
        let cat = catalog();
        let reps = select_representatives(&cat);
        assert_eq!(reps.len(), 5);
        // One per approach.
        let approaches: std::collections::HashSet<_> = reps.iter().map(|t| t.approach).collect();
        assert_eq!(approaches.len(), 5);
    }

    #[test]
    fn representatives_match_the_papers_stars() {
        let cat = catalog();
        let names: Vec<&str> = select_representatives(&cat)
            .iter()
            .map(|t| t.name)
            .collect();
        assert!(names.contains(&"Label Relaxation"));
        assert!(names.contains(&"Meta Label Correction"));
        assert!(names.contains(&"Active-Passive Losses"));
        // KD and Ensemble have no all-criteria candidate; the paper
        // re-implemented representatives.
        assert!(names.contains(&"Self Distillation"));
        assert!(names.contains(&"LTEC"));
    }

    #[test]
    fn starred_techniques_meet_all_criteria() {
        for t in catalog() {
            if t.starred {
                assert!(
                    t.criteria.meets_all(),
                    "{} is starred but fails a criterion",
                    t.name
                );
            }
        }
    }

    #[test]
    fn catalog_has_three_candidates_per_approach() {
        let cat = catalog();
        for approach in Approach::ALL {
            let n = cat.iter().filter(|t| t.approach == approach).count();
            assert_eq!(n, 3, "{approach:?}");
        }
    }
}
