//! A strict recursive-descent JSON parser.

use crate::{JsonError, Number, Value};

/// Parses a complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at(p.pos, "trailing characters after JSON value"));
    }
    Ok(value)
}

/// Nesting depth limit; prevents stack overflow on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(self.pos, format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::at(
                self.pos,
                format!("invalid literal (expected `{text}`)"),
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at(self.pos, "maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::at(
                self.pos,
                format!("unexpected character `{}`", other as char),
            )),
            None => Err(JsonError::at(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(JsonError::at(self.pos, "expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest run of plain bytes in one step.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The source is a &str, so the run is valid UTF-8; surface a
                // positioned error rather than panicking if that ever breaks.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| JsonError::at(start, "invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => {
                    return Err(JsonError::at(self.pos, "control character in string"));
                }
                None => return Err(JsonError::at(self.pos, "unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let b = self
            .peek()
            .ok_or_else(|| JsonError::at(self.pos, "unterminated escape sequence"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let first = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let low = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(JsonError::at(self.pos, "invalid low surrogate"));
                        }
                        0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                    } else {
                        return Err(JsonError::at(self.pos, "unpaired surrogate"));
                    }
                } else {
                    first
                };
                let ch = char::from_u32(code)
                    .ok_or_else(|| JsonError::at(self.pos, "invalid unicode escape"))?;
                out.push(ch);
            }
            other => {
                return Err(JsonError::at(
                    self.pos - 1,
                    format!("invalid escape `\\{}`", other as char),
                ));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| JsonError::at(self.pos, "unterminated unicode escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| JsonError::at(self.pos, "invalid hex digit"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(JsonError::at(self.pos, "expected digit"));
        }
        // Leading zero may not be followed by more digits.
        if self.peek() == Some(b'0') && matches!(self.bytes.get(self.pos + 1), Some(b'0'..=b'9')) {
            return Err(JsonError::at(self.pos, "leading zeros are not allowed"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(
                    self.pos,
                    "expected digit after decimal point",
                ));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(self.pos, "expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at(start, "invalid UTF-8 in number"))?;
        let number = if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| JsonError::at(start, "invalid number"))?;
            Number::F64(v)
        } else if negative {
            match text.parse::<i64>() {
                Ok(v) => Number::Int(v),
                Err(_) => Number::F64(
                    text.parse()
                        .map_err(|_| JsonError::at(start, "invalid number"))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::UInt(v),
                Err(_) => Number::F64(
                    text.parse()
                        .map_err(|_| JsonError::at(start, "invalid number"))?,
                ),
            }
        };
        Ok(Value::Num(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Num(Number::UInt(42)));
        assert_eq!(parse("-3").unwrap(), Value::Num(Number::Int(-3)));
        assert_eq!(parse("2.5e2").unwrap(), Value::Num(Number::F64(250.0)));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x\ny"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Value::Null));
    }

    #[test]
    fn decodes_escapes_and_surrogate_pairs() {
        let v = parse(r#""\u00e9\ud83d\ude00\t\\""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀\t\\"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "tru", "[1,]", "{\"a\":}", "1 2", "{'a':1}", "[1", "\"\\x\"", "01",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn reports_error_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset(), Some(4));
    }
}
