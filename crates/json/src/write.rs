//! Compact and pretty JSON writers, matching `serde_json`'s output for the
//! value shapes this workspace produces.

use crate::{Number, Value};
use std::fmt::Write as _;

/// Serialises a value with no whitespace: `{"a":[1,2]}`.
pub fn write_compact(value: &Value) -> String {
    let mut out = String::new();
    compact(value, &mut out);
    out
}

/// Serialises a value with 2-space indentation, the `serde_json` pretty
/// layout (empty arrays/objects stay on one line).
pub fn write_pretty(value: &Value) -> String {
    let mut out = String::new();
    pretty(value, 0, &mut out);
    out
}

fn compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                compact(item, out);
            }
            out.push('}');
        }
    }
}

fn pretty(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => compact(other, out),
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(v) => write_float(v, out),
        Number::F32(v) => {
            // Serialised in f32 shortest form, like serde_json does for
            // f32 values; non-finite floats become null. Callers that must
            // not launder (checkpoints) serialise raw bits, not floats —
            // see tdfm-nn's SavedModel `params_bits`.
            // tdfm-lint: allow(nan-laundering, JSON has no NaN/Inf literal; serde_json-compatible null keeps result files parseable)
            if v.is_finite() {
                let start = out.len();
                let _ = write!(out, "{v}");
                ensure_float_marker(start, out);
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_float(v: f64, out: &mut String) {
    // tdfm-lint: allow(nan-laundering, JSON has no NaN/Inf literal; serde_json-compatible null keeps result files parseable)
    if v.is_finite() {
        let start = out.len();
        let _ = write!(out, "{v}");
        ensure_float_marker(start, out);
    } else {
        out.push_str("null");
    }
}

/// `Display` prints `1` for `1.0`; serde_json prints `1.0`. Append `.0`
/// when the rendered text has no fraction or exponent.
fn ensure_float_marker(start: usize, out: &mut String) {
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn floats_keep_a_decimal_marker() {
        let mut out = String::new();
        write_number(Number::F64(1.0), &mut out);
        assert_eq!(out, "1.0");
        out.clear();
        write_number(Number::F32(0.1), &mut out);
        assert_eq!(out, "0.1");
        out.clear();
        write_number(Number::F64(f64::NAN), &mut out);
        assert_eq!(out, "null");
    }

    #[test]
    fn compact_and_pretty_round_trip() {
        let doc = parse(r#"{"a":[1,2.5,"x"],"b":{},"c":[]}"#).unwrap();
        assert_eq!(write_compact(&doc), r#"{"a":[1,2.5,"x"],"b":{},"c":[]}"#);
        let pretty = write_pretty(&doc);
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2.5,\n    \"x\"\n  ],\n  \"b\": {},\n  \"c\": []\n}"
        );
        assert_eq!(parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn strings_escape_controls() {
        let mut out = String::new();
        write_string("a\"b\\c\n\u{0001}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\u0001\"");
    }
}
