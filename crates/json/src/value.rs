//! The JSON document model.

/// A JSON number, remembering enough about its origin to reproduce
/// `serde_json`'s output exactly.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer literal.
    UInt(u64),
    /// A negative integer literal.
    Int(i64),
    /// A binary64 float (parsed fractions/exponents, or computed values).
    F64(f64),
    /// A float that originated as `f32` and is written with the `f32`
    /// shortest round-trip representation.
    F32(f32),
}

impl Number {
    /// The value as a binary64 float.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::UInt(v) => v as f64,
            Number::Int(v) => v as f64,
            Number::F64(v) => v,
            Number::F32(v) => f64::from(v),
        }
    }

    /// The value as a `u64`, if it is a non-negative integer (including
    /// floats with an exact integral value).
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::UInt(v) => Some(v),
            Number::Int(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F32(v) if v >= 0.0 && v.fract() == 0.0 && f64::from(v) <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Int(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F32(v) => Number::F64(f64::from(v)).as_i64(),
            _ => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.as_f64() == other.as_f64()
    }
}

/// A parsed or constructed JSON document.
///
/// Objects preserve insertion order so struct output is reproducible and
/// matches serde's field-declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short noun for error messages ("string", "object", ...).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if applicable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as a signed integer, if applicable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks up `key` in an object (first match wins). `None` for missing
    /// keys and non-objects alike.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_finds_keys_in_order() {
        let v = Value::Object(vec![
            ("a".into(), Value::Bool(true)),
            ("b".into(), Value::Null),
        ]);
        assert_eq!(v.get("a"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b"), Some(&Value::Null));
        assert_eq!(v.get("c"), None);
    }

    #[test]
    fn number_accessors_respect_ranges() {
        assert_eq!(Value::Num(Number::UInt(7)).as_u64(), Some(7));
        assert_eq!(Value::Num(Number::Int(-7)).as_u64(), None);
        assert_eq!(Value::Num(Number::Int(-7)).as_i64(), Some(-7));
        assert_eq!(Value::Num(Number::F64(3.0)).as_u64(), Some(3));
        assert_eq!(Value::Num(Number::F64(3.5)).as_u64(), None);
    }
}
