//! [`ToJson`]/[`FromJson`] implementations for primitives, strings,
//! sequences, options and the small tuples the workspace uses.

use crate::{FromJson, JsonError, Number, ToJson, Value};

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::expected("boolean", v))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::expected("string", v))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Num(Number::F32(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        // Nulls decode as NaN, mirroring how non-finite floats serialise.
        if matches!(v, Value::Null) {
            return Ok(f32::NAN);
        }
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| JsonError::expected("number", v))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(Number::F64(*self))
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if matches!(v, Value::Null) {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| JsonError::expected("number", v))
    }
}

macro_rules! json_uint {
    ($($ty:ty),+) => {
        $(
            impl ToJson for $ty {
                fn to_json(&self) -> Value {
                    Value::Num(Number::UInt(*self as u64))
                }
            }

            impl FromJson for $ty {
                fn from_json(v: &Value) -> Result<Self, JsonError> {
                    let raw = v
                        .as_u64()
                        .ok_or_else(|| JsonError::expected("unsigned integer", v))?;
                    <$ty>::try_from(raw).map_err(|_| {
                        JsonError::msg(format!(
                            "{raw} is out of range for {}",
                            stringify!($ty)
                        ))
                    })
                }
            }
        )+
    };
}

json_uint!(u8, u16, u32, u64, usize);

macro_rules! json_int {
    ($($ty:ty),+) => {
        $(
            impl ToJson for $ty {
                fn to_json(&self) -> Value {
                    let v = *self as i64;
                    if v < 0 {
                        Value::Num(Number::Int(v))
                    } else {
                        Value::Num(Number::UInt(v as u64))
                    }
                }
            }

            impl FromJson for $ty {
                fn from_json(v: &Value) -> Result<Self, JsonError> {
                    let raw = v
                        .as_i64()
                        .ok_or_else(|| JsonError::expected("integer", v))?;
                    <$ty>::try_from(raw).map_err(|_| {
                        JsonError::msg(format!(
                            "{raw} is out of range for {}",
                            stringify!($ty)
                        ))
                    })
                }
            }
        )+
    };
}

json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let items = v
            .as_array()
            .ok_or_else(|| JsonError::expected("array", v))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                T::from_json(item).map_err(|e| JsonError::msg(format!("index {i}: {e}")))
            })
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(inner) => inner.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::expected("array of length 2", v)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(JsonError::expected("array of length 3", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{from_str, to_string};

    #[test]
    fn integers_round_trip_with_range_checks() {
        assert_eq!(to_string(&42u32), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u32>("-1").is_err());
        assert_eq!(from_str::<i32>("-1").unwrap(), -1);
        assert_eq!(to_string(&-5i64), "-5");
    }

    #[test]
    fn floats_round_trip_through_f64_text() {
        for v in [0.1f32, 1.0, -2.5, 3.4e38, 1e-7] {
            let text = to_string(&v);
            assert_eq!(from_str::<f32>(&text).unwrap(), v, "text {text}");
        }
        assert_eq!(to_string(&f32::NAN), "null");
        assert!(from_str::<f32>("null").unwrap().is_nan());
    }

    #[test]
    fn sequences_options_and_tuples_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let text = to_string(&v);
        assert_eq!(text, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&text).unwrap(), v);
        let t = (3usize, 4usize, 5usize);
        assert_eq!(to_string(&t), "[3,4,5]");
        assert_eq!(from_str::<(usize, usize, usize)>("[3,4,5]").unwrap(), t);
    }
}
