#![forbid(unsafe_code)]
//! # tdfm-json
//!
//! A small, dependency-free JSON library for the TDFM reproduction.
//!
//! The study's container builds fully offline, so the usual
//! serde/serde_json pair is not available; this crate provides the subset
//! the workspace actually needs, with a wire format identical to what the
//! previous serde derives produced:
//!
//! * [`Value`] — a JSON document model that preserves object key order.
//! * [`from_str`] / [`parse`] — a strict recursive-descent parser.
//! * [`to_string`] / [`to_string_pretty`] — compact and 2-space-indented
//!   writers matching `serde_json`'s output byte for byte for the types
//!   used here.
//! * [`ToJson`] / [`FromJson`] — conversion traits, with [`json_struct!`],
//!   [`json_struct_to!`] and [`json_unit_enum!`] macros standing in for
//!   `#[derive(Serialize, Deserialize)]`.
//!
//! Unit enum variants serialise as their variant name string
//! (`"Mislabelling"`), structs as objects in field-declaration order, and
//! `f32` fields keep their shortest-round-trip `f32` representation.
//!
//! # Examples
//!
//! ```
//! use tdfm_json::{from_str, to_string, FromJson, ToJson, Value};
//!
//! #[derive(Debug, PartialEq)]
//! struct Point {
//!     x: f32,
//!     y: f32,
//! }
//! tdfm_json::json_struct!(Point { x, y });
//!
//! let p = Point { x: 1.5, y: -2.0 };
//! let text = to_string(&p);
//! assert_eq!(text, r#"{"x":1.5,"y":-2.0}"#);
//! assert_eq!(from_str::<Point>(&text).unwrap(), p);
//! ```

mod error;
mod impls;
mod parse;
mod value;
mod write;

pub use error::JsonError;
pub use parse::parse;
pub use value::{Number, Value};

/// Converts a value to its JSON document model.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Value;
}

/// Reconstructs a value from a JSON document model.
pub trait FromJson: Sized {
    /// Converts the document model back into `Self`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first mismatch between the
    /// document and the expected shape.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

/// Serialises `value` to compact JSON (`{"a":1}`).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    write::write_compact(&value.to_json())
}

/// Serialises `value` to pretty JSON with 2-space indentation, matching
/// `serde_json::to_string_pretty`.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    write::write_pretty(&value.to_json())
}

/// Parses `text` and converts it into `T`.
///
/// # Errors
///
/// Returns a [`JsonError`] if the text is not valid JSON or does not have
/// the shape `T` expects.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    let value = parse(text)?;
    T::from_json(&value)
}

/// Extracts and converts the field `name` from a JSON object.
///
/// Intended for use by [`json_struct!`] expansions and hand-written
/// [`FromJson`] impls.
///
/// # Errors
///
/// Returns a [`JsonError`] if `v` is not an object, the field is missing,
/// or the field fails to convert.
pub fn field<T: FromJson>(v: &Value, name: &str) -> Result<T, JsonError> {
    match v.get(name) {
        Some(inner) => {
            T::from_json(inner).map_err(|e| JsonError::msg(format!("field `{name}`: {e}")))
        }
        None => match v {
            Value::Object(_) => Err(JsonError::msg(format!("missing field `{name}`"))),
            other => Err(JsonError::expected("object", other)),
        },
    }
}

/// Like [`field`], but falls back to `T::default()` when the field is
/// absent — the equivalent of `#[serde(default)]`.
///
/// # Errors
///
/// Returns a [`JsonError`] if `v` is not an object or a *present* field
/// fails to convert.
pub fn field_or_default<T: FromJson + Default>(v: &Value, name: &str) -> Result<T, JsonError> {
    if !matches!(v, Value::Object(_)) {
        return Err(JsonError::expected("object", v));
    }
    match v.get(name) {
        Some(inner) => {
            T::from_json(inner).map_err(|e| JsonError::msg(format!("field `{name}`: {e}")))
        }
        None => Ok(T::default()),
    }
}

/// Implements [`ToJson`] and [`FromJson`] for a fieldless enum, mapping
/// each variant to its name string — the same wire format serde uses for
/// unit variants.
#[macro_export]
macro_rules! json_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                let name = match self {
                    $( $ty::$variant => stringify!($variant), )+
                };
                $crate::Value::Str(name.to_string())
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::JsonError> {
                let name = v
                    .as_str()
                    .ok_or_else(|| $crate::JsonError::expected(stringify!($ty), v))?;
                match name {
                    $( stringify!($variant) => Ok($ty::$variant), )+
                    other => Err($crate::JsonError::msg(format!(
                        concat!("unknown ", stringify!($ty), " variant `{}`"),
                        other
                    ))),
                }
            }
        }
    };
}

/// Implements [`ToJson`] and [`FromJson`] for a struct with named fields,
/// serialised as an object in field order. Append `= default` to a field
/// to make it optional on input (`#[serde(default)]`).
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident $(= $default:ident)?),+ $(,)? }) => {
        $crate::json_struct_to!($ty { $($field),+ });

        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $( $field: $crate::json_struct!(@read v, $field $(= $default)?), )+
                })
            }
        }
    };
    (@read $v:ident, $field:ident) => {
        $crate::field($v, stringify!($field))?
    };
    (@read $v:ident, $field:ident = default) => {
        $crate::field_or_default($v, stringify!($field))?
    };
}

/// Implements only [`ToJson`] for a struct with named fields — for types
/// holding `&'static str` registry data that are exported but never read
/// back.
#[macro_export]
macro_rules! json_struct_to {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $(
                        (
                            stringify!($field).to_string(),
                            $crate::ToJson::to_json(&self.$field),
                        ),
                    )+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Kind {
        Alpha,
        Beta,
    }
    json_unit_enum!(Kind { Alpha, Beta });

    #[derive(Debug, Clone, PartialEq, Default)]
    struct Rec {
        kind: Option<u32>,
        score: f32,
        tags: Vec<String>,
        extra: Vec<u32>,
    }
    json_struct!(Rec {
        kind,
        score,
        tags,
        extra = default
    });

    #[test]
    fn unit_enum_round_trips_as_name_string() {
        assert_eq!(to_string(&Kind::Alpha), "\"Alpha\"");
        assert_eq!(from_str::<Kind>("\"Beta\"").unwrap(), Kind::Beta);
        assert!(from_str::<Kind>("\"Gamma\"").is_err());
    }

    #[test]
    fn struct_round_trips_with_defaulted_field() {
        let rec = Rec {
            kind: Some(7),
            score: 0.25,
            tags: vec!["a".into()],
            extra: vec![],
        };
        let text = to_string(&rec);
        assert_eq!(text, r#"{"kind":7,"score":0.25,"tags":["a"],"extra":[]}"#);
        assert_eq!(from_str::<Rec>(&text).unwrap(), rec);
        // `extra` may be omitted entirely.
        let trimmed = r#"{"kind":null,"score":1.0,"tags":[]}"#;
        let back = from_str::<Rec>(trimmed).unwrap();
        assert_eq!(back.extra, Vec::<u32>::new());
        assert_eq!(back.kind, None);
    }

    #[test]
    fn missing_required_field_is_reported_by_name() {
        let err = from_str::<Rec>(r#"{"score":1.0,"tags":[]}"#).unwrap_err();
        assert!(err.to_string().contains("kind"), "got: {err}");
    }

    #[test]
    fn pretty_output_matches_serde_json_layout() {
        let rec = Rec {
            kind: None,
            score: 1.0,
            tags: vec!["x".into(), "y".into()],
            extra: vec![],
        };
        let pretty = to_string_pretty(&rec);
        let expected = "{\n  \"kind\": null,\n  \"score\": 1.0,\n  \"tags\": [\n    \"x\",\n    \"y\"\n  ],\n  \"extra\": []\n}";
        assert_eq!(pretty, expected);
    }
}
