//! The crate's single error type.

use crate::Value;
use std::fmt;

/// An error produced while parsing JSON text or converting a [`Value`]
/// into a concrete type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset into the source text, when the error came from the
    /// parser.
    offset: Option<usize>,
}

impl JsonError {
    /// A conversion error with a free-form message.
    pub fn msg(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: None,
        }
    }

    /// A parse error anchored at a byte offset in the source text.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// A type-mismatch error: wanted `expected`, found `got`.
    pub fn expected(expected: &str, got: &Value) -> Self {
        Self::msg(format!("expected {expected}, found {}", got.kind_name()))
    }

    /// Byte offset in the source text, for parser errors.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for JsonError {}
