//! Criterion benchmarks of per-technique training cost — the
//! machine-measured counterpart of the Section IV-E training-overhead
//! analysis. Each benchmark performs one full (small) training run of the
//! technique, so the relative times mirror the paper's multipliers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tdfm_core::technique::{TechniqueKind, TrainContext};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::split_clean;
use tdfm_nn::models::ModelKind;

fn bench_techniques(c: &mut Criterion) {
    let data = DatasetKind::Pneumonia.generate(Scale::Tiny, 0);
    let mut group = c.benchmark_group("technique_fit");
    group.sample_size(10);
    for kind in TechniqueKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.abbrev()),
            &kind,
            |bench, kind| {
                let technique = kind.build();
                bench.iter(|| {
                    let mut ctx = TrainContext::new(Scale::Tiny, 0);
                    // Keep the benchmark itself small and fixed-cost.
                    ctx.fit.epochs = 2;
                    ctx.fit.batch_size = 8;
                    let train = if technique.wants_clean_subset() {
                        let (clean, rest) = split_clean(&data.train, 0.1, 0);
                        ctx.clean_subset = Some(clean);
                        rest
                    } else {
                        data.train.clone()
                    };
                    technique.fit(ModelKind::ConvNet, &train, &ctx)
                });
            },
        );
    }
    group.finish();
}

fn bench_models_one_epoch(c: &mut Criterion) {
    use tdfm_nn::loss::CrossEntropy;
    use tdfm_nn::trainer::{fit, FitConfig, TargetSource};
    let data = DatasetKind::Cifar10.generate(Scale::Tiny, 0);
    let mut group = c.benchmark_group("model_one_epoch");
    group.sample_size(10);
    for model in ModelKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(model.name()), &model, |bench, m| {
            bench.iter(|| {
                let ctx = TrainContext::new(Scale::Tiny, 0);
                let mut net = m.build(&ctx.model_config(&data.train));
                fit(
                    &mut net,
                    &CrossEntropy,
                    data.train.images(),
                    &TargetSource::Hard(data.train.labels().to_vec()),
                    &FitConfig { epochs: 1, batch_size: 16, ..FitConfig::default() },
                )
            });
        });
    }
    group.finish();
}


/// Short measurement profile: the kernels are small and the study machine
/// is a single core, so long criterion defaults add nothing.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_techniques, bench_models_one_epoch
}
criterion_main!(benches);
