//! Benchmarks of per-technique training cost — the machine-measured
//! counterpart of the Section IV-E training-overhead analysis. Each
//! benchmark performs one full (small) training run of the technique, so
//! the relative times mirror the paper's multipliers.

use tdfm_bench::harness::{bench, group, BenchSuite};
use tdfm_bench::write_json;
use tdfm_core::technique::{TechniqueKind, TrainContext};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::split_clean;
use tdfm_nn::loss::CrossEntropy;
use tdfm_nn::models::ModelKind;
use tdfm_nn::trainer::{fit, FitConfig, TargetSource};

fn main() {
    let mut suite = BenchSuite::new("trainer");
    let data = DatasetKind::Pneumonia.generate(Scale::Tiny, 0);
    group("technique_fit");
    for kind in TechniqueKind::ALL {
        let technique = kind.build();
        let report = bench(&format!("technique_fit/{}", kind.abbrev()), || {
            let mut ctx = TrainContext::new(Scale::Tiny, 0);
            // Keep the benchmark itself small and fixed-cost.
            ctx.fit.epochs = 2;
            ctx.fit.batch_size = 8;
            let train = if technique.wants_clean_subset() {
                let (clean, rest) = split_clean(&data.train, 0.1, 0);
                ctx.clean_subset = Some(clean);
                rest
            } else {
                data.train.clone()
            };
            technique.fit(ModelKind::ConvNet, &train, &ctx)
        });
        suite.push(&report);
    }

    let data = DatasetKind::Cifar10.generate(Scale::Tiny, 0);
    group("model_one_epoch");
    for model in ModelKind::ALL {
        let report = bench(&format!("model_one_epoch/{}", model.name()), || {
            let ctx = TrainContext::new(Scale::Tiny, 0);
            let mut net = model.build(&ctx.model_config(&data.train));
            fit(
                &mut net,
                &CrossEntropy,
                data.train.images(),
                &TargetSource::Hard(data.train.labels().to_vec()),
                &FitConfig {
                    epochs: 1,
                    batch_size: 16,
                    ..FitConfig::default()
                },
            )
        });
        suite.push(&report);
    }

    // The committed baseline: per-technique / per-model timings plus the
    // kernel-op histograms accumulated over the whole suite.
    match write_json("BENCH_trainer.json", &suite.to_json()) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write suite: {e}"),
    }
}
