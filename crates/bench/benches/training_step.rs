//! Benchmarks of per-technique training cost — the machine-measured
//! counterpart of the Section IV-E training-overhead analysis. Each
//! benchmark performs one full (small) training run of the technique, so
//! the relative times mirror the paper's multipliers.
//!
//! # Compare mode (the CI regression gate)
//!
//! ```text
//! cargo bench -p tdfm-bench --bench training_step -- \
//!     --compare results/BENCH_trainer.json --threshold 0.10
//! ```
//!
//! re-runs the suite, diffs it against the committed baseline and exits
//! non-zero when the geomean of the `current/baseline` `min_seconds`
//! ratios regresses by more than `threshold` (a fraction; default 0.10).
//! In compare mode the baseline file is **not** rewritten.

use tdfm_bench::compare::compare_suites;
use tdfm_bench::harness::{bench, group, BenchSuite, ScalingCurve, ScalingPoint};
use tdfm_bench::write_json;
use tdfm_core::technique::{TechniqueKind, TrainContext};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::split_clean;
use tdfm_nn::loss::CrossEntropy;
use tdfm_nn::models::ModelKind;
use tdfm_nn::trainer::{fit, FitConfig, TargetSource};
use tdfm_tensor::{ops, simd, Tensor};

/// Options parsed from the bench binary's own CLI tail (after cargo's
/// `--bench training_step --`). Cargo's libtest flag `--bench` is ignored.
struct Options {
    compare: Option<String>,
    threshold: f64,
    scaling_out: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        compare: None,
        threshold: 0.10,
        scaling_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--compare" => {
                opts.compare = Some(args.next().expect("--compare needs a baseline path"));
            }
            "--threshold" => {
                let raw = args.next().expect("--threshold needs a fraction");
                opts.threshold = raw
                    .parse()
                    .unwrap_or_else(|_| panic!("invalid --threshold {raw:?}"));
            }
            "--scaling-out" => {
                opts.scaling_out = Some(args.next().expect("--scaling-out needs a path"));
            }
            // Flags cargo-bench forwards from libtest conventions.
            "--bench" => {}
            other => {
                panic!("unknown argument {other:?} (expected --compare/--threshold/--scaling-out)")
            }
        }
    }
    opts
}

/// The elementwise / reduction micro-benchmarks: the vector kernels the
/// SIMD dispatch covers, at a size (1M elements / 256×4096) where the
/// measurement is bandwidth-and-lane-bound rather than call-overhead-bound.
fn bench_kernels(suite: &mut BenchSuite) {
    const N: usize = 1 << 20;
    let mut rng = tdfm_tensor::rng::Rng::seed_from(0xBE7C);
    let x = Tensor::randn(&[N], 1.0, &mut rng);
    let mut y = Tensor::randn(&[N], 1.0, &mut rng);
    let mut relu_out = vec![0.0f32; N];
    let mut mask = vec![0u32; N];

    group("elementwise");
    suite.push(&bench("elementwise/axpy_1m", || {
        simd::axpy(0.5, x.data(), y.data_mut());
    }));
    suite.push(&bench("elementwise/scale_1m", || {
        simd::scale(y.data_mut(), 1.0009);
    }));
    suite.push(&bench("elementwise/momentum_update_1m", || {
        simd::momentum_update(y.data_mut(), x.data(), relu_out.as_slice(), 0.9, 1e-4);
    }));
    suite.push(&bench("elementwise/relu_fwd_1m", || {
        simd::relu_forward(x.data(), &mut relu_out, &mut mask);
    }));
    suite.push(&bench("elementwise/relu_bwd_1m", || {
        simd::relu_backward(x.data(), &mask, &mut relu_out);
    }));

    let t = Tensor::randn(&[256, 4096], 2.0, &mut rng);
    group("reduction");
    suite.push(&bench("reduction/softmax_256x4096", || {
        ops::softmax_rows(&t, 1.0)
    }));
    suite.push(&bench("reduction/log_softmax_256x4096", || {
        ops::log_softmax_rows(&t)
    }));
    suite.push(&bench("reduction/sum_rows_256x4096", || ops::sum_rows(&t)));
}

/// The multi-thread scaling cells: one-epoch fits pinned to 1/2/4 worker
/// threads. The per-cell timings go into the suite (so the compare gate
/// covers thread scaling like any other benchmark) and come back as
/// [`ScalingCurve`]s for the `--scaling-out` artefact.
fn bench_scaling(suite: &mut BenchSuite) -> Vec<ScalingCurve> {
    const THREADS: [usize; 3] = [1, 2, 4];
    let data = DatasetKind::Cifar10.generate(Scale::Tiny, 0);
    let mut curves = Vec::new();
    group("scaling");
    for model in [ModelKind::ConvNet, ModelKind::ResNet18] {
        let mut curve = ScalingCurve {
            name: model.name().to_string(),
            simd: simd::simd_name().to_string(),
            points: Vec::new(),
        };
        for threads in THREADS {
            tdfm_tensor::parallel::set_num_threads(threads);
            let report = bench(&format!("scaling/{}/t{threads}", model.name()), || {
                let ctx = TrainContext::new(Scale::Tiny, 0);
                let mut net = model.build(&ctx.model_config(&data.train));
                fit(
                    &mut net,
                    &CrossEntropy,
                    data.train.images(),
                    &TargetSource::Hard(data.train.labels().to_vec()),
                    &FitConfig {
                        epochs: 1,
                        batch_size: 16,
                        ..FitConfig::default()
                    },
                )
            });
            curve.points.push(ScalingPoint {
                threads: threads as u32,
                mean_seconds: report.mean.as_secs_f64(),
                min_seconds: report.min.as_secs_f64(),
            });
            suite.push(&report);
        }
        curves.push(curve);
    }
    // Back to the default resolution order (TDFM_THREADS / auto).
    tdfm_tensor::parallel::set_num_threads(0);
    curves
}

fn main() {
    let opts = parse_args();
    let mut suite = BenchSuite::new("trainer");
    let data = DatasetKind::Pneumonia.generate(Scale::Tiny, 0);
    group("technique_fit");
    for kind in TechniqueKind::ALL {
        let technique = kind.build();
        let report = bench(&format!("technique_fit/{}", kind.abbrev()), || {
            let mut ctx = TrainContext::new(Scale::Tiny, 0);
            // Keep the benchmark itself small and fixed-cost.
            ctx.fit.epochs = 2;
            ctx.fit.batch_size = 8;
            let train = if technique.wants_clean_subset() {
                let (clean, rest) = split_clean(&data.train, 0.1, 0);
                ctx.clean_subset = Some(clean);
                rest
            } else {
                data.train.clone()
            };
            technique.fit(ModelKind::ConvNet, &train, &ctx)
        });
        suite.push(&report);
    }

    let data = DatasetKind::Cifar10.generate(Scale::Tiny, 0);
    group("model_one_epoch");
    for model in ModelKind::ALL {
        let report = bench(&format!("model_one_epoch/{}", model.name()), || {
            let ctx = TrainContext::new(Scale::Tiny, 0);
            let mut net = model.build(&ctx.model_config(&data.train));
            fit(
                &mut net,
                &CrossEntropy,
                data.train.images(),
                &TargetSource::Hard(data.train.labels().to_vec()),
                &FitConfig {
                    epochs: 1,
                    batch_size: 16,
                    ..FitConfig::default()
                },
            )
        });
        suite.push(&report);
    }

    bench_kernels(&mut suite);
    let curves = bench_scaling(&mut suite);
    if let Some(path) = &opts.scaling_out {
        let json = tdfm_json::to_string_pretty(&curves);
        match std::fs::write(path, &json) {
            Ok(()) => println!("\nwrote scaling curves to {path}"),
            Err(e) => eprintln!("could not write scaling curves to {path}: {e}"),
        }
    }

    if let Some(baseline_path) = &opts.compare {
        // Regression gate: diff against the committed baseline instead of
        // rewriting it. `cargo bench` runs this binary with the package
        // directory as cwd, so a relative path that does not resolve there
        // falls back to the workspace root.
        let mut path = std::path::PathBuf::from(baseline_path);
        if path.is_relative() && !path.exists() {
            let workspace = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&path);
            if workspace.exists() {
                path = workspace;
            }
        }
        let baseline_path = path.display().to_string();
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("could not read baseline {baseline_path}: {e}"));
        let baseline: BenchSuite = tdfm_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("could not parse baseline {baseline_path}: {e:?}"));
        suite.to_json(); // refresh the metrics snapshot for parity
        let report = compare_suites(&baseline, &suite);
        println!("\n== compare vs {baseline_path} ==");
        print!("{}", report.render(opts.threshold));
        if !report.passes(opts.threshold) {
            std::process::exit(1);
        }
        return;
    }

    // The committed baseline: per-technique / per-model timings plus the
    // kernel-op histograms accumulated over the whole suite.
    match write_json("BENCH_trainer.json", &suite.to_json()) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write suite: {e}"),
    }
}
