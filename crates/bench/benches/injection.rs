//! Criterion benchmarks of the fault injector (TF-DM analogue): how fast
//! each fault type corrupts a training set, plus synthetic-dataset
//! generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::{FaultKind, FaultPlan, Injector};

fn bench_injection(c: &mut Criterion) {
    let data = DatasetKind::Cifar10.generate(Scale::Smoke, 0);
    let injector = Injector::new(0);
    let mut group = c.benchmark_group("inject");
    for fault in FaultKind::ALL {
        let plan = FaultPlan::single(fault, 30.0);
        group.bench_with_input(BenchmarkId::from_parameter(fault.name()), &plan, |bench, plan| {
            bench.iter(|| injector.apply(&data.train, plan));
        });
    }
    let combo = FaultPlan::single(FaultKind::Mislabelling, 30.0)
        .and(FaultKind::Repetition, 20.0)
        .and(FaultKind::Removal, 10.0);
    group.bench_function("combined", |bench| {
        bench.iter(|| injector.apply(&data.train, &combo));
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(20);
    for kind in DatasetKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |bench, kind| {
            let mut seed = 0u64;
            bench.iter(|| {
                seed += 1;
                kind.generate(Scale::Tiny, seed)
            });
        });
    }
    group.finish();
}


/// Short measurement profile: the kernels are small and the study machine
/// is a single core, so long criterion defaults add nothing.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_injection, bench_generation
}
criterion_main!(benches);
