//! Benchmarks of the fault injector (TF-DM analogue): how fast each fault
//! type corrupts a training set, plus synthetic-dataset generation
//! throughput.

use tdfm_bench::harness::{bench, group};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::{FaultKind, FaultPlan, Injector};

fn main() {
    let data = DatasetKind::Cifar10.generate(Scale::Smoke, 0);
    let injector = Injector::new(0);
    group("inject");
    for fault in FaultKind::ALL {
        let plan = FaultPlan::single(fault, 30.0);
        bench(&format!("inject/{}", fault.name()), || {
            injector.apply(&data.train, &plan)
        });
    }
    let combo = FaultPlan::single(FaultKind::Mislabelling, 30.0)
        .and(FaultKind::Repetition, 20.0)
        .and(FaultKind::Removal, 10.0);
    bench("inject/combined", || injector.apply(&data.train, &combo));

    group("generate");
    for kind in DatasetKind::ALL {
        let mut seed = 0u64;
        bench(&format!("generate/{}", kind.name()), || {
            seed += 1;
            kind.generate(Scale::Tiny, seed)
        });
    }
}
