//! Benchmarks of per-technique inference cost — the machine-measured
//! counterpart of the Section IV-E inference-overhead analysis
//! (everything ~1x except ensembles at ~5x).

use tdfm_bench::harness::{bench, group};
use tdfm_core::technique::{Baseline, Ensemble, Mitigation, TrainContext};
use tdfm_data::{DatasetKind, Scale};
use tdfm_nn::models::ModelKind;

fn main() {
    let data = DatasetKind::Cifar10.generate(Scale::Tiny, 0);
    let mut ctx = TrainContext::new(Scale::Tiny, 0);
    ctx.fit.epochs = 1;
    let mut single = Baseline.fit(ModelKind::ConvNet, &data.train, &ctx);
    let mut ensemble = Ensemble::paper_default().fit(ModelKind::ConvNet, &data.train, &ctx);

    group("predict_test_set");
    bench("predict_test_set/single", || {
        single.predict(data.test.images())
    });
    bench("predict_test_set/ensemble5", || {
        ensemble.predict(data.test.images())
    });

    group("model_inference");
    for model in ModelKind::ALL {
        let ctx = TrainContext::new(Scale::Tiny, 0);
        let mut net = model.build(&ctx.model_config(&data.train));
        bench(&format!("model_inference/{}", model.name()), || {
            net.predict(data.test.images(), 64)
        });
    }
}
