//! Criterion benchmarks of per-technique inference cost — the
//! machine-measured counterpart of the Section IV-E inference-overhead
//! analysis (everything ~1x except ensembles at ~5x).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tdfm_core::technique::{Baseline, Ensemble, Mitigation, TrainContext};
use tdfm_data::{DatasetKind, Scale};
use tdfm_nn::models::ModelKind;

fn bench_inference(c: &mut Criterion) {
    let data = DatasetKind::Cifar10.generate(Scale::Tiny, 0);
    let mut ctx = TrainContext::new(Scale::Tiny, 0);
    ctx.fit.epochs = 1;
    let mut single = Baseline.fit(ModelKind::ConvNet, &data.train, &ctx);
    let mut ensemble = Ensemble::paper_default().fit(ModelKind::ConvNet, &data.train, &ctx);

    let mut group = c.benchmark_group("predict_test_set");
    group.sample_size(20);
    group.bench_function(BenchmarkId::from_parameter("single"), |bench| {
        bench.iter(|| single.predict(data.test.images()));
    });
    group.bench_function(BenchmarkId::from_parameter("ensemble5"), |bench| {
        bench.iter(|| ensemble.predict(data.test.images()));
    });
    group.finish();
}

fn bench_per_model_inference(c: &mut Criterion) {
    let data = DatasetKind::Cifar10.generate(Scale::Tiny, 0);
    let mut group = c.benchmark_group("model_inference");
    group.sample_size(20);
    for model in ModelKind::ALL {
        let ctx = TrainContext::new(Scale::Tiny, 0);
        let mut net = model.build(&ctx.model_config(&data.train));
        group.bench_with_input(BenchmarkId::from_parameter(model.name()), &model, |bench, _| {
            bench.iter(|| net.predict(data.test.images(), 64));
        });
    }
    group.finish();
}


/// Short measurement profile: the kernels are small and the study machine
/// is a single core, so long criterion defaults add nothing.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_inference, bench_per_model_inference
}
criterion_main!(benches);
