//! Criterion micro-benchmarks of the tensor substrate: the matmul and
//! convolution kernels every experiment spends its time in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tdfm_tensor::ops::{conv2d_backward, conv2d_forward, matmul, softmax_rows, Conv2dSpec};
use tdfm_tensor::rng::Rng;
use tdfm_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[16usize, 64, 128] {
        let mut rng = Rng::seed_from(0);
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(&a, &b));
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    let mut rng = Rng::seed_from(1);
    let spec = Conv2dSpec::same(3);
    for &(batch, ch) in &[(8usize, 4usize), (32, 8)] {
        let x = Tensor::randn(&[batch, ch, 8, 8], 1.0, &mut rng);
        let w = Tensor::randn(&[ch * 2, ch, 3, 3], 0.3, &mut rng);
        let bias = Tensor::zeros(&[ch * 2]);
        group.bench_with_input(
            BenchmarkId::new("forward", format!("{batch}x{ch}")),
            &batch,
            |bench, _| {
                bench.iter(|| conv2d_forward(&x, &w, Some(&bias), spec));
            },
        );
        let y = conv2d_forward(&x, &w, Some(&bias), spec);
        let gy = Tensor::ones(y.shape().dims());
        group.bench_with_input(
            BenchmarkId::new("backward", format!("{batch}x{ch}")),
            &batch,
            |bench, _| {
                bench.iter(|| conv2d_backward(&x, &w, &gy, spec));
            },
        );
    }
    group.finish();
}

fn bench_depthwise(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let x = Tensor::randn(&[32, 8, 8, 8], 1.0, &mut rng);
    let w = Tensor::randn(&[8, 1, 3, 3], 0.3, &mut rng);
    let spec = Conv2dSpec { stride: 1, pad: 1, groups: 8 };
    c.bench_function("depthwise_conv_forward", |bench| {
        bench.iter(|| conv2d_forward(&x, &w, None, spec));
    });
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let logits = Tensor::randn(&[256, 43], 2.0, &mut rng);
    c.bench_function("softmax_256x43", |bench| {
        bench.iter(|| softmax_rows(&logits, 1.0));
    });
}


/// Short measurement profile: the kernels are small and the study machine
/// is a single core, so long criterion defaults add nothing.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_matmul, bench_conv, bench_depthwise, bench_softmax
}
criterion_main!(benches);
