//! Micro-benchmarks of the tensor substrate: the matmul and convolution
//! kernels every experiment spends its time in.

use tdfm_bench::harness::{bench, group};
use tdfm_tensor::ops::{conv2d_backward, conv2d_forward, matmul, softmax_rows, Conv2dSpec};
use tdfm_tensor::rng::Rng;
use tdfm_tensor::Tensor;

fn main() {
    group("matmul");
    for &n in &[16usize, 64, 128] {
        let mut rng = Rng::seed_from(0);
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        bench(&format!("matmul/{n}"), || matmul(&a, &b));
    }

    group("conv2d");
    let mut rng = Rng::seed_from(1);
    let spec = Conv2dSpec::same(3);
    for &(batch, ch) in &[(8usize, 4usize), (32, 8)] {
        let x = Tensor::randn(&[batch, ch, 8, 8], 1.0, &mut rng);
        let w = Tensor::randn(&[ch * 2, ch, 3, 3], 0.3, &mut rng);
        let bias = Tensor::zeros(&[ch * 2]);
        bench(&format!("conv2d/forward/{batch}x{ch}"), || {
            conv2d_forward(&x, &w, Some(&bias), spec)
        });
        let y = conv2d_forward(&x, &w, Some(&bias), spec);
        let gy = Tensor::ones(y.shape().dims());
        bench(&format!("conv2d/backward/{batch}x{ch}"), || {
            conv2d_backward(&x, &w, &gy, spec)
        });
    }

    group("depthwise + softmax");
    let mut rng = Rng::seed_from(2);
    let x = Tensor::randn(&[32, 8, 8, 8], 1.0, &mut rng);
    let w = Tensor::randn(&[8, 1, 3, 3], 0.3, &mut rng);
    let spec = Conv2dSpec {
        stride: 1,
        pad: 1,
        groups: 8,
    };
    bench("depthwise_conv_forward", || {
        conv2d_forward(&x, &w, None, spec)
    });

    let mut rng = Rng::seed_from(3);
    let logits = Tensor::randn(&[256, 43], 2.0, &mut rng);
    bench("softmax_256x43", || softmax_rows(&logits, 1.0));
}
