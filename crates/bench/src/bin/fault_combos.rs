//! Regenerates the Section IV-C combined-fault experiments: injecting two
//! fault types together and checking the AD is statistically similar to
//! the dominant individual fault type.

use tdfm_bench::{ad_cell, banner, results_to_json, write_json, write_manifest};
use tdfm_core::{ExperimentConfig, ExperimentResult, Runner, TechniqueKind};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::{FaultKind, FaultPlan};
use tdfm_nn::models::ModelKind;

fn plan_config(scale: Scale, plan: FaultPlan) -> ExperimentConfig {
    ExperimentConfig {
        dataset: DatasetKind::Gtsrb,
        model: ModelKind::ConvNet,
        technique: TechniqueKind::Baseline,
        fault_plan: plan,
        scale,
        repetitions: scale.repetitions().max(3),
        seed: 4,
    }
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Section IV-C: combined fault types (GTSRB, ConvNet)",
        scale,
        "Section IV-C",
    );
    let runner = Runner::new();
    // All six plans share one golden model per repetition seed; the grid
    // runs them concurrently while the cache trains each golden once.
    let configs: Vec<ExperimentConfig> = [
        FaultPlan::single(FaultKind::Mislabelling, 30.0),
        FaultPlan::single(FaultKind::Removal, 30.0),
        FaultPlan::single(FaultKind::Repetition, 30.0),
        FaultPlan::single(FaultKind::Mislabelling, 30.0).and(FaultKind::Removal, 30.0),
        FaultPlan::single(FaultKind::Mislabelling, 30.0).and(FaultKind::Repetition, 30.0),
        FaultPlan::single(FaultKind::Removal, 30.0).and(FaultKind::Repetition, 30.0),
    ]
    .into_iter()
    .map(|plan| plan_config(scale, plan))
    .collect();
    let mut grid = runner.run_grid(&configs).into_iter();
    let mut next = || grid.next().expect("grid covers every plan");
    let (mislabel, removal, repetition) = (next(), next(), next());
    let (mis_rem, mis_rep, rem_rep) = (next(), next(), next());

    let all = [
        &mislabel,
        &removal,
        &repetition,
        &mis_rem,
        &mis_rep,
        &rem_rep,
    ];
    println!("{:<36}{:>16}", "Fault plan", "Baseline AD");
    println!("{}", "-".repeat(52));
    for r in all {
        println!("{:<36}{:>16}", r.fault_label, ad_cell(&r.ad));
    }

    println!("\nStatistical-similarity checks (CI overlap + Welch t-test, alpha = 0.05):");
    for (label, combo, single) in [
        ("mislabelling+removal ~ mislabelling", &mis_rem, &mislabel),
        (
            "mislabelling+repetition ~ mislabelling",
            &mis_rep,
            &mislabel,
        ),
        ("removal+repetition ~ repetition", &rem_rep, &repetition),
    ] {
        let combo_ads: Vec<f32> = combo.repetitions.iter().map(|r| r.accuracy_delta).collect();
        let single_ads: Vec<f32> = single
            .repetitions
            .iter()
            .map(|r| r.accuracy_delta)
            .collect();
        let welch = tdfm_core::stats::welch_t_test(&combo_ads, &single_ads);
        println!(
            "  {label}: CI {} / Welch p = {:.3} -> {}",
            if combo.ad.overlaps(&single.ad) {
                "overlap"
            } else {
                "disjoint"
            },
            welch.p_value,
            if welch.similar_at(0.05) {
                "similar"
            } else {
                "DIFFERENT"
            }
        );
    }

    let owned: Vec<ExperimentResult> = all.into_iter().cloned().collect();
    match write_json("fault_combos.json", &results_to_json(&owned)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match write_manifest("fault_combos", &runner, &owned) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write manifest: {e}"),
    }
}
