//! Regenerates the Section IV-E runtime-overhead analysis: training and
//! inference time multipliers of each technique relative to the baseline.
//!
//! Paper expectations: inference 1x for everything except ensembles (5x);
//! training lowest for LS (~1x), ~1.5x for KD, higher for LC, highest for
//! ensembles (~5x).

use tdfm_bench::{banner, write_json};
use tdfm_core::overhead::measure_overheads;
use tdfm_data::{DatasetKind, Scale};
use tdfm_nn::models::ModelKind;

fn main() {
    let scale = Scale::from_env();
    banner("Section IV-E: runtime overheads", scale, "Section IV-E");
    let mut all = Vec::new();
    for (dataset, model) in [
        (DatasetKind::Gtsrb, ModelKind::ConvNet),
        (DatasetKind::Cifar10, ModelKind::ResNet18),
    ] {
        println!("--- {dataset} / {} ---", model.name());
        println!(
            "{:<10}{:>12}{:>12}{:>14}{:>14}",
            "Tech", "train (s)", "infer (s)", "train mult", "infer mult"
        );
        let rows = measure_overheads(dataset, model, scale, 11);
        for row in &rows {
            println!(
                "{:<10}{:>12.3}{:>12.4}{:>13.2}x{:>13.2}x",
                row.technique.abbrev(),
                row.train_seconds,
                row.infer_seconds,
                row.train_multiplier,
                row.infer_multiplier,
            );
        }
        println!();
        all.extend(rows);
    }
    let json = tdfm_json::to_string_pretty(&all);
    match write_json("overhead.json", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    println!(
        "\nPaper shape check: Ens ~5x in both phases; KD between 1.5x and 2x training;\n\
         LS ~1x; LC above the single-model techniques."
    );
}
