//! Regenerates Table II: the dataset registry (paper statistics plus the
//! synthetic analogue sizes at the current scale).

use tdfm_bench::banner;
use tdfm_data::{DatasetKind, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table II: image classification datasets",
        scale,
        "Section IV, Table II",
    );
    println!(
        "{:<12}{:>14}{:>12}{:>26}  {:>13}{:>12}",
        "Name", "Paper train", "Paper test", "Task (# classes)", "Synth train", "Synth test"
    );
    println!("{}", "-".repeat(92));
    for kind in DatasetKind::ALL {
        let info = kind.info();
        println!(
            "{:<12}{:>14}{:>12}{:>26}  {:>13}{:>12}",
            info.name,
            info.paper_train,
            info.paper_test,
            format!("{} ({})", info.task, info.classes),
            kind.train_size(scale),
            kind.test_size(scale),
        );
    }
    // Structural facts the table asserts, verified live.
    let tt = DatasetKind::Gtsrb.generate(scale, 0);
    assert_eq!(tt.train.classes(), 43);
    let infos: Vec<_> = DatasetKind::ALL.iter().map(|k| k.info()).collect();
    let json = tdfm_json::to_string_pretty(&infos);
    match tdfm_bench::write_json("table2.json", &json) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
