//! Regenerates Fig. 4: AD across all three datasets — (ResNet50,
//! mislabelling) and (MobileNet, repetition) per dataset at 10/30/50%.
//!
//! All panels are submitted as one [`Runner::run_grid`] call; results come
//! back in submission order, so the printed output matches a sequential
//! run. Each panel is printed as the numeric series plus an ASCII bar
//! chart of the 30% column.

use tdfm_bench::{ad_cell, banner, render_bars, results_to_json, write_json, write_manifest};
use tdfm_core::{ExperimentConfig, ExperimentResult, Runner, TechniqueKind};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::{FaultKind, FaultPlan};
use tdfm_nn::models::ModelKind;

const PERCENTS: [f32; 3] = [10.0, 30.0, 50.0];

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 4: AD across datasets", scale, "Section IV-D, Fig. 4");
    // Panels in the paper's order: (a)-(f).
    let panels = [
        (
            'a',
            DatasetKind::Cifar10,
            ModelKind::ResNet50,
            FaultKind::Mislabelling,
        ),
        (
            'b',
            DatasetKind::Cifar10,
            ModelKind::MobileNet,
            FaultKind::Repetition,
        ),
        (
            'c',
            DatasetKind::Gtsrb,
            ModelKind::ResNet50,
            FaultKind::Mislabelling,
        ),
        (
            'd',
            DatasetKind::Gtsrb,
            ModelKind::MobileNet,
            FaultKind::Repetition,
        ),
        (
            'e',
            DatasetKind::Pneumonia,
            ModelKind::ResNet50,
            FaultKind::Mislabelling,
        ),
        (
            'f',
            DatasetKind::Pneumonia,
            ModelKind::MobileNet,
            FaultKind::Repetition,
        ),
    ];
    let runner = Runner::new();

    // Build the full grid first: one row of three doses per (panel,
    // technique) pair, in print order.
    let mut rows: Vec<(usize, TechniqueKind)> = Vec::new();
    let mut flat: Vec<ExperimentConfig> = Vec::new();
    for (i, (_, dataset, model, fault)) in panels.iter().enumerate() {
        for technique in TechniqueKind::ALL {
            if technique == TechniqueKind::LabelCorrection && *fault != FaultKind::Mislabelling {
                continue;
            }
            rows.push((i, technique));
            flat.extend(PERCENTS.iter().map(|&p| ExperimentConfig {
                dataset: *dataset,
                model: *model,
                technique,
                fault_plan: FaultPlan::single(*fault, p),
                scale,
                repetitions: scale.repetitions(),
                seed: 4,
            }));
        }
    }
    let mut remaining = runner.run_grid(&flat).into_iter();

    let mut results = Vec::new();
    let mut row_iter = rows.into_iter().peekable();
    for (i, (panel, dataset, model, fault)) in panels.iter().enumerate() {
        println!(
            "--- Fig. 4{panel}: {dataset}, {}, {fault} ---",
            model.name()
        );
        println!("{:<8}{:>15}{:>15}{:>15}", "Tech", "10%", "30%", "50%");
        let mut bars: Vec<(String, f32, f32)> = Vec::new();
        while row_iter.peek().is_some_and(|(p, _)| *p == i) {
            let (_, technique) = row_iter.next().expect("peeked row exists");
            let series: Vec<ExperimentResult> = remaining.by_ref().take(PERCENTS.len()).collect();
            print!("{:<8}", technique.abbrev());
            for result in &series {
                print!("{:>15}", ad_cell(&result.ad));
            }
            println!();
            if let Some(r) = series.get(1) {
                bars.push((technique.abbrev().to_string(), r.ad.mean, r.ad.half_width));
            }
            results.extend(series);
        }
        println!("\n{}", render_bars("AD at 30% (bar chart):", &bars));
    }
    match write_json("fig4.json", &results_to_json(&results)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match write_manifest("fig4", &runner, &results) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write manifest: {e}"),
    }
    println!(
        "\nPaper shape check: CIFAR-10 and Pneumonia mislabelling ADs higher than\n\
         GTSRB's; repetition ADs low everywhere; Ens lowest overall, LS second;\n\
         LC best at 50% mislabelling on the few-class datasets (a, e) but not on\n\
         GTSRB (c)."
    );
}
