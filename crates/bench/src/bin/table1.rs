//! Regenerates Table I: the survey's technique-selection matrix.

use tdfm_survey::{catalog, render_table_i, select_representatives};

fn main() {
    let cat = catalog();
    print!("{}", render_table_i(&cat));
    println!();
    let reps = select_representatives(&cat);
    println!("Selected representatives (one per TDFM approach):");
    for t in &reps {
        println!("  {:<24} -> {} {}", t.approach.name(), t.name, t.reference);
    }
    let json = tdfm_json::to_string_pretty(&cat);
    match tdfm_bench::write_json("table1.json", &json) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
