//! Renders `results/fig3.json` and `results/fig4.json` into paper-style
//! SVG bar-chart panels (`results/fig3-*.svg`, `results/fig4-*.svg`).
//!
//! Run after `fig3`/`fig4`: the JSON is grouped into panels by
//! (dataset, model, fault kind), one SVG per panel.

use std::collections::BTreeMap;
use tdfm_bench::svg::{panel_from_results, render_panel, PanelSpec};
use tdfm_bench::{results_dir, write_json};
use tdfm_core::ExperimentResult;

fn panels_from_file(name: &str) -> Vec<(String, Vec<ExperimentResult>)> {
    let path = results_dir().join(name);
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!("skipping {name}: run the corresponding harness binary first");
        return Vec::new();
    };
    let results: Vec<ExperimentResult> = match tdfm_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("skipping {name}: {e}");
            return Vec::new();
        }
    };
    // Group into panels by (dataset, model, fault kind).
    let mut panels: BTreeMap<String, Vec<ExperimentResult>> = BTreeMap::new();
    for r in results {
        let fault = r
            .config
            .fault_plan
            .specs()
            .first()
            .map(|s| s.kind.name())
            .unwrap_or("clean");
        let key = format!(
            "{}, {}, {}",
            r.config.dataset.name(),
            r.config.model.name(),
            fault
        );
        panels.entry(key).or_default().push(r);
    }
    panels.into_iter().collect()
}

fn main() {
    let mut written = 0;
    for source in ["fig3.json", "fig4.json"] {
        let stem = source.trim_end_matches(".json");
        for (i, (title, results)) in panels_from_file(source).into_iter().enumerate() {
            let groups = panel_from_results(&results, &[10.0, 30.0, 50.0]);
            if groups.iter().all(|g| g.bars.is_empty()) {
                continue;
            }
            let spec = PanelSpec {
                title: title.clone(),
                ..PanelSpec::default()
            };
            let svg = render_panel(&spec, &groups);
            let name = format!("{stem}-{}.svg", (b'a' + i as u8) as char);
            match write_json(&name, &svg) {
                Ok(path) => {
                    println!("wrote {} ({title})", path.display());
                    written += 1;
                }
                Err(e) => eprintln!("could not write {name}: {e}"),
            }
        }
    }
    if written == 0 {
        eprintln!("nothing rendered; run fig3/fig4 first");
        std::process::exit(1);
    }
}
