//! Extension study: label-noise *detection* vs the paper's mitigation
//! techniques.
//!
//! The paper deliberately scopes detection out (Section III-A); this
//! binary puts a confident-learning-style detect-and-filter strategy on
//! the same harness and compares it with the baseline, label smoothing
//! and the ensemble under mislabelling faults, and reports raw detection
//! precision/recall against the injector's ground truth.

use tdfm_bench::{ad_cell, banner};
use tdfm_core::detect::{DetectAndFilter, NoiseDetector};
use tdfm_core::technique::{Mitigation, TrainContext};
use tdfm_core::{ExperimentConfig, Runner, TechniqueKind};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::{FaultKind, FaultPlan, Injector};
use tdfm_nn::models::ModelKind;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Extension: detection vs mitigation (CIFAR-10, ConvNet)",
        scale,
        "Section III-A scope",
    );
    let runner = Runner::new();

    // Raw detection quality per fault amount.
    println!("detector quality (3-fold confident learning):");
    println!(
        "{:<10}{:>12}{:>12}{:>12}{:>12}",
        "fault %", "flagged", "precision", "recall", "F1"
    );
    for percent in [10.0f32, 30.0, 50.0] {
        let data = DatasetKind::Cifar10.generate(scale, 13);
        let plan = FaultPlan::single(FaultKind::Mislabelling, percent);
        let (faulty, report) = Injector::new(13).apply(&data.train, &plan);
        let mut ctx = TrainContext::new(scale, 13);
        ctx.tune_for(faulty.len());
        let detection = NoiseDetector::default().detect(&faulty, &ctx);
        let quality = detection.evaluate(&report.mislabelled_indices);
        println!(
            "{:<10}{:>12}{:>11.1}%{:>11.1}%{:>11.1}%",
            percent,
            detection.suspects.len(),
            100.0 * quality.precision,
            100.0 * quality.recall,
            100.0 * quality.f1,
        );
    }

    // AD comparison: detect-and-filter vs the paper's techniques, all
    // twelve cells fanned out as one grid.
    println!("\nAD under mislabelling (lower is better):");
    println!("{:<22}{:>15}{:>15}{:>15}", "Technique", "10%", "30%", "50%");
    let cell_config = |technique, percent| ExperimentConfig {
        dataset: DatasetKind::Cifar10,
        model: ModelKind::ConvNet,
        technique,
        fault_plan: FaultPlan::single(FaultKind::Mislabelling, percent),
        scale,
        repetitions: scale.repetitions().min(2),
        seed: 13,
    };
    let mut grid: Vec<(String, ExperimentConfig, Box<dyn Mitigation>)> = Vec::new();
    for technique in [
        TechniqueKind::Baseline,
        TechniqueKind::LabelSmoothing,
        TechniqueKind::Ensemble,
    ] {
        for percent in [10.0f32, 30.0, 50.0] {
            grid.push((
                technique.full_name().to_string(),
                cell_config(technique, percent),
                technique.build(),
            ));
        }
    }
    for percent in [10.0f32, 30.0, 50.0] {
        grid.push((
            "Detect-and-filter".to_string(),
            // The technique field is the reporting label only.
            cell_config(TechniqueKind::Baseline, percent),
            Box::new(DetectAndFilter::default()),
        ));
    }
    let cells: Vec<(&ExperimentConfig, &dyn Mitigation)> =
        grid.iter().map(|(_, c, t)| (c, t.as_ref())).collect();
    let results = runner.run_grid_with(&cells);
    for (row, chunk) in grid.chunks(3).zip(results.chunks(3)) {
        print!("{:<22}", row[0].0);
        for result in chunk {
            print!("{:>15}", ad_cell(&result.ad));
        }
        println!();
    }
    println!(
        "\nExpectation: detect-and-filter lands between the baseline and the best\n\
         mitigation — it removes most flipped labels but also some clean samples."
    );
}
