//! Probe: robust-loss behaviour on GTSRB with the adaptive APL weights —
//! checks RL is no longer degenerate on the 43-class dataset before the
//! full figure runs.

use tdfm_bench::{ad_cell, banner};
use tdfm_core::{ExperimentConfig, Runner, TechniqueKind};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::{FaultKind, FaultPlan};
use tdfm_nn::models::ModelKind;

fn main() {
    let scale = Scale::from_env();
    banner("RL adaptive-weight probe (GTSRB)", scale, "Section III-B3");
    let runner = Runner::new();
    let cells: Vec<(ModelKind, TechniqueKind)> = [ModelKind::ConvNet, ModelKind::ResNet50]
        .into_iter()
        .flat_map(|model| {
            [TechniqueKind::Baseline, TechniqueKind::RobustLoss]
                .into_iter()
                .map(move |technique| (model, technique))
        })
        .collect();
    let configs: Vec<ExperimentConfig> = cells
        .iter()
        .map(|&(model, technique)| ExperimentConfig {
            dataset: DatasetKind::Gtsrb,
            model,
            technique,
            fault_plan: FaultPlan::single(FaultKind::Mislabelling, 30.0),
            scale,
            repetitions: 2,
            seed: 4,
        })
        .collect();
    for ((model, technique), result) in cells.iter().zip(runner.run_grid(&configs)) {
        println!(
            "{:<10} {:<5} AD {}  faulty acc {:.0}%",
            model.name(),
            technique.abbrev(),
            ad_cell(&result.ad),
            100.0 * result.faulty_accuracy.mean
        );
    }
}
