//! The Byzantine-robust sharded-training study (ROADMAP item 2,
//! production-scale axis): data-parallel training over 8 logical shard
//! workers where one shard's labelling pipeline has drifted.
//!
//! Each aggregator trains a clean reference per repetition, then retrains
//! with one shard mislabelled at the paper's three fault rates; the table
//! reports the accuracy delta against the aggregator's own clean run plus
//! how often the FedDebug-style localizer ranked the injected shard first.

use tdfm_bench::{
    ad_cell, banner, pct, shard_fault_results_to_json, write_json, write_shard_fault_manifest,
};
use tdfm_core::{AggregatorKind, ShardFaultRunner, ShardFaultSweep};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::ShardFaultPlan;
use tdfm_nn::models::ModelKind;

/// The paper's mislabelling rates (Fig. 3/4), applied to the one victim
/// shard.
const RATES: [f32; 3] = [10.0, 30.0, 50.0];

/// Which of the 8 shards the fault strikes.
const VICTIM: usize = 1;

/// Logical shard workers.
const WORKERS: usize = 8;

fn plans() -> Vec<ShardFaultPlan> {
    let mut plans = vec![ShardFaultPlan::clean()];
    plans.extend(RATES.iter().map(|&r| ShardFaultPlan::mislabel(VICTIM, r)));
    plans
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Byzantine-robust sharded training: one faulty shard in eight",
        scale,
        "ROADMAP item 2 (beyond the paper's single-trainer setting)",
    );
    let plans = plans();
    let sweep = ShardFaultSweep {
        dataset: DatasetKind::Cifar10,
        model: ModelKind::ConvNet,
        aggregators: AggregatorKind::standard_set(),
        plans: plans.clone(),
        workers: WORKERS,
        scale,
        repetitions: scale.repetitions(),
        seed: 8,
    };
    let runner = ShardFaultRunner::new();
    let results = runner.run_sweep(&sweep);

    print!("{:<18}{:>8}", "Aggregator", "clean");
    for &r in &RATES {
        print!("{:>14}", format!("AD @{r:.0}%"));
    }
    println!("{:>8}", "loc");
    for (a, kind) in sweep.aggregators.iter().enumerate() {
        let row = &results[a * plans.len()..(a + 1) * plans.len()];
        print!("{:<18}{:>8}", kind.name(), pct(row[0].clean_accuracy.mean));
        for cell in &row[1..] {
            print!("{:>14}", ad_cell(&cell.ad));
        }
        let hits: usize = row[1..].iter().map(|c| c.localization_hits).sum();
        let trials = row[1..].len() * sweep.repetitions;
        println!("{:>8}", format!("{hits}/{trials}"));
    }
    println!(
        "\ncolumns: AD vs the aggregator's own clean run (% ± 95% CI half-width)\n\
         at each mislabelling rate on shard {VICTIM} of {WORKERS}; `loc` counts how\n\
         often the localizer's top suspect was the injected shard."
    );

    match write_json("shard_faults.json", &shard_fault_results_to_json(&results)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match write_shard_fault_manifest("shard_faults", &runner, &results) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write manifest: {e}"),
    }
    println!(
        "\nShape check: Mean degrades as the victim rate grows; TrimmedMean/Median/\n\
         CTMA stay near zero AD, and the localizer fingers shard {VICTIM} at the top rate."
    );
}
