//! The model-fault study (ROADMAP item 1, second fault axis): every TDFM
//! technique — plus fault-aware training — scored under SEU bit-flip
//! sweeps in model weights and activations.
//!
//! Each technique trains once per repetition on *clean* data; faults then
//! strike the fitted model at inference time at three rates per site
//! (1, 4 and 16 simultaneous flips), and the table reports the accuracy
//! delta against the model's own fault-free predictions. Weight flips are
//! applied and reverted bit-exactly via the XOR involution; activation
//! flips ride the `Network` forward hook.

use tdfm_bench::{
    ad_cell, banner, model_fault_results_to_json, pct, write_json, write_model_fault_manifest,
};
use tdfm_core::model_fault::{ModelFaultRunner, ModelFaultSweep};
use tdfm_core::TechniqueKind;
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::model::{InjectionMode, ModelFaultPlan};
use tdfm_nn::models::ModelKind;

/// Simultaneous flips per trial — the study's three fault rates.
const RATES: [usize; 3] = [1, 4, 16];

fn plans() -> Vec<ModelFaultPlan> {
    let mut plans = Vec::new();
    for &flips in &RATES {
        plans.push(ModelFaultPlan::weights().mode(InjectionMode::Stochastic {
            flips,
            seed: 40 + flips as u64,
        }));
    }
    for &flips in &RATES {
        plans.push(
            ModelFaultPlan::activations().mode(InjectionMode::Stochastic {
                flips,
                seed: 40 + flips as u64,
            }),
        );
    }
    plans
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Model-fault study: SEU bit-flips in weights and activations",
        scale,
        "ROADMAP item 1 (beyond the paper's data-fault axis)",
    );
    let plans = plans();
    let sweep = ModelFaultSweep {
        dataset: DatasetKind::Pneumonia,
        model: ModelKind::ConvNet,
        techniques: TechniqueKind::ALL_EXTENDED.to_vec(),
        plans: plans.clone(),
        scale,
        repetitions: scale.repetitions(),
        seed: 6,
    };
    let runner = ModelFaultRunner::new();
    let results = runner.run_sweep(&sweep);

    // Column legend: short headers, full plan labels below the table.
    let headers: Vec<String> = RATES
        .iter()
        .map(|f| format!("W x{f}"))
        .chain(RATES.iter().map(|f| format!("A x{f}")))
        .collect();
    print!("{:<10}{:>8}", "Technique", "clean");
    for h in &headers {
        print!("{h:>14}");
    }
    println!();
    for (t, technique) in sweep.techniques.iter().enumerate() {
        let row = &results[t * plans.len()..(t + 1) * plans.len()];
        print!(
            "{:<10}{:>8}",
            technique.abbrev(),
            pct(row[0].clean_accuracy.mean)
        );
        for cell in row {
            print!("{:>14}", ad_cell(&cell.ad));
        }
        println!();
    }
    println!("\ncolumns (AD, % ± 95% CI half-width):");
    for (h, plan) in headers.iter().zip(&plans) {
        println!("  {:<6} = {}", h, plan.label());
    }

    match write_json("model_faults.json", &model_fault_results_to_json(&results)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match write_model_fault_manifest("model_faults", &runner, &results) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write manifest: {e}"),
    }
    println!(
        "\nShape check: weight faults hurt more as the flip count grows; fault-aware\n\
         training (FAT) should sit below the baseline under weight faults."
    );
}
