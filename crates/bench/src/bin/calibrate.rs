//! Quick calibration probe: verifies that the synthetic substrate shows
//! the paper's headline effects before running the full figure harnesses.
//!
//! Prints golden accuracy and baseline AD for a few anchor configurations:
//! the motivating example's accuracy collapse (Section II), the
//! mislabelling dose-response, and the mildness of removal faults.

use tdfm_bench::{ad_cell, banner, pct};
use tdfm_core::{ExperimentConfig, Runner, TechniqueKind};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::{FaultKind, FaultPlan};
use tdfm_nn::models::ModelKind;

fn main() {
    let scale = Scale::from_env();
    banner("Calibration probe", scale, "Sections II and IV");
    let runner = Runner::new();
    let anchors = [
        (DatasetKind::Pneumonia, ModelKind::ResNet50),
        (DatasetKind::Gtsrb, ModelKind::ConvNet),
        (DatasetKind::Cifar10, ModelKind::ConvNet),
    ];
    let doses = [
        (FaultKind::Mislabelling, &[10.0f32, 30.0, 50.0][..]),
        (FaultKind::Removal, &[50.0][..]),
    ];
    let configs: Vec<ExperimentConfig> = anchors
        .iter()
        .flat_map(|&(dataset, model)| {
            doses.iter().flat_map(move |&(kind, pcts)| {
                pcts.iter().map(move |&p| ExperimentConfig {
                    dataset,
                    model,
                    technique: TechniqueKind::Baseline,
                    fault_plan: FaultPlan::single(kind, p),
                    scale,
                    repetitions: scale.repetitions(),
                    seed: 7,
                })
            })
        })
        .collect();
    let start = std::time::Instant::now();
    let results = runner.run_grid(&configs);
    let mut cells = results.iter();
    for (dataset, model) in anchors {
        println!("--- {dataset} / {model} ---");
        for (kind, pcts) in doses {
            for &p in pcts {
                let result = cells.next().expect("grid covers every anchor");
                println!(
                    "  {kind:<13} {p:>4}%  golden {}  faulty {}  AD {}",
                    pct(result.golden_accuracy.mean),
                    pct(result.faulty_accuracy.mean),
                    ad_cell(&result.ad),
                );
            }
        }
    }
    println!(
        "\ntotal wall-clock: {:?} (TDFM_THREADS caps the grid fan-out)",
        start.elapsed()
    );
}
