//! Ablation studies for the design choices DESIGN.md §4 calls out:
//!
//! 1. Ensemble diversity — heterogeneous (the paper's) vs homogeneous
//!    ensembles of the same size.
//! 2. Knowledge-distillation alpha — the "garbage in, garbage out"
//!    crossover as teacher weight grows.
//! 3. Label-correction clean fraction gamma.
//! 4. Label smoothing alpha, and relaxation vs classic smoothing.

use tdfm_bench::{ad_cell, banner};
use tdfm_core::technique::{
    Ensemble, LabelCorrection, LabelSmoothing, Mitigation, SelfDistillation,
};
use tdfm_core::{ExperimentConfig, Runner, TechniqueKind};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::{FaultKind, FaultPlan};
use tdfm_nn::models::ModelKind;

fn config(scale: Scale, technique: TechniqueKind, percent: f32) -> ExperimentConfig {
    ExperimentConfig {
        dataset: DatasetKind::Gtsrb,
        model: ModelKind::ConvNet,
        technique,
        fault_plan: FaultPlan::single(FaultKind::Mislabelling, percent),
        scale,
        repetitions: scale.repetitions(),
        seed: 4,
    }
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Ablations (GTSRB, 30% mislabelling unless noted)",
        scale,
        "DESIGN.md §4",
    );
    let runner = Runner::new();

    // Every ablation cell pairs a config with a custom technique; one
    // run_grid_with call fans the whole study across the thread budget.
    let mut labelled: Vec<(String, ExperimentConfig, Box<dyn Mitigation>)> = vec![
        (
            "1. Ensemble diversity|  heterogeneous (paper)".to_string(),
            config(scale, TechniqueKind::Ensemble, 30.0),
            Box::new(Ensemble::paper_default()),
        ),
        (
            "|  homogeneous 5xConvNet".to_string(),
            config(scale, TechniqueKind::Ensemble, 30.0),
            Box::new(Ensemble::homogeneous(ModelKind::ConvNet, 5)),
        ),
    ];
    for alpha in [0.3f32, 0.7, 0.9] {
        let section = if alpha == 0.3 {
            "2. KD teacher weight alpha (50% mislabelling)"
        } else {
            ""
        };
        labelled.push((
            format!("{section}|  alpha {alpha:.1}"),
            config(scale, TechniqueKind::KnowledgeDistillation, 50.0),
            Box::new(SelfDistillation::new(alpha, 4.0)),
        ));
    }
    for gamma in [0.05f32, 0.2] {
        let section = if gamma == 0.05 {
            "3. LC clean fraction gamma"
        } else {
            ""
        };
        labelled.push((
            format!("{section}|  gamma {gamma:.2}"),
            config(scale, TechniqueKind::LabelCorrection, 30.0),
            Box::new(LabelCorrection::new(gamma)),
        ));
    }
    for alpha in [0.05f32, 0.1, 0.4] {
        let section = if alpha == 0.05 {
            "4. Label smoothing alpha (relaxation)"
        } else {
            ""
        };
        labelled.push((
            format!("{section}|  alpha {alpha:.2}"),
            config(scale, TechniqueKind::LabelSmoothing, 30.0),
            Box::new(LabelSmoothing::new(alpha)),
        ));
    }
    for fault in [FaultKind::Mislabelling, FaultKind::PairFlipMislabelling] {
        let section = if fault == FaultKind::Mislabelling {
            "5. Noise model: uniform vs pair-flip mislabelling (baseline)"
        } else {
            ""
        };
        labelled.push((
            format!("{section}|  {:<12}", fault.name()),
            ExperimentConfig {
                fault_plan: FaultPlan::single(fault, 30.0),
                ..config(scale, TechniqueKind::Baseline, 30.0)
            },
            TechniqueKind::Baseline.build(),
        ));
    }

    let cells: Vec<(&ExperimentConfig, &dyn Mitigation)> =
        labelled.iter().map(|(_, c, t)| (c, t.as_ref())).collect();
    let results = runner.run_grid_with(&cells);

    for ((label, _, _), result) in labelled.iter().zip(&results) {
        let (section, row) = label.split_once('|').expect("label has a section marker");
        if !section.is_empty() {
            println!("--- {section} ---");
        }
        println!("{row}: AD {}", ad_cell(&result.ad));
    }
}
