//! Ablation studies for the design choices DESIGN.md §4 calls out:
//!
//! 1. Ensemble diversity — heterogeneous (the paper's) vs homogeneous
//!    ensembles of the same size.
//! 2. Knowledge-distillation alpha — the "garbage in, garbage out"
//!    crossover as teacher weight grows.
//! 3. Label-correction clean fraction gamma.
//! 4. Label smoothing alpha, and relaxation vs classic smoothing.

use tdfm_bench::{ad_cell, banner};
use tdfm_core::technique::{Ensemble, LabelCorrection, SelfDistillation};
use tdfm_core::{ExperimentConfig, Runner, TechniqueKind};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::{FaultKind, FaultPlan};
use tdfm_nn::models::ModelKind;

fn config(scale: Scale, technique: TechniqueKind, percent: f32) -> ExperimentConfig {
    ExperimentConfig {
        dataset: DatasetKind::Gtsrb,
        model: ModelKind::ConvNet,
        technique,
        fault_plan: FaultPlan::single(FaultKind::Mislabelling, percent),
        scale,
        repetitions: scale.repetitions(),
        seed: 4,
    }
}

fn main() {
    let scale = Scale::from_env();
    banner("Ablations (GTSRB, 30% mislabelling unless noted)", scale, "DESIGN.md §4");
    let runner = Runner::new();

    println!("--- 1. Ensemble diversity ---");
    let hetero = runner.run_with(
        &config(scale, TechniqueKind::Ensemble, 30.0),
        &Ensemble::paper_default(),
    );
    let homo = runner.run_with(
        &config(scale, TechniqueKind::Ensemble, 30.0),
        &Ensemble::homogeneous(ModelKind::ConvNet, 5),
    );
    println!("  heterogeneous (paper): AD {}", ad_cell(&hetero.ad));
    println!("  homogeneous 5xConvNet: AD {}", ad_cell(&homo.ad));

    println!("\n--- 2. KD teacher weight alpha (50% mislabelling) ---");
    for alpha in [0.3f32, 0.7, 0.9] {
        let result = runner.run_with(
            &config(scale, TechniqueKind::KnowledgeDistillation, 50.0),
            &SelfDistillation::new(alpha, 4.0),
        );
        println!("  alpha {alpha:.1}: AD {}", ad_cell(&result.ad));
    }

    println!("\n--- 3. LC clean fraction gamma ---");
    for gamma in [0.05f32, 0.2] {
        let result = runner.run_with(
            &config(scale, TechniqueKind::LabelCorrection, 30.0),
            &LabelCorrection::new(gamma),
        );
        println!("  gamma {gamma:.2}: AD {}", ad_cell(&result.ad));
    }

    println!("\n--- 4. Label smoothing alpha (relaxation) ---");
    for alpha in [0.05f32, 0.1, 0.4] {
        let result = runner.run_with(
            &config(scale, TechniqueKind::LabelSmoothing, 30.0),
            &tdfm_core::technique::LabelSmoothing::new(alpha),
        );
        println!("  alpha {alpha:.2}: AD {}", ad_cell(&result.ad));
    }

    println!("\n--- 5. Noise model: uniform vs pair-flip mislabelling (baseline) ---");
    for fault in [FaultKind::Mislabelling, FaultKind::PairFlipMislabelling] {
        let result = runner.run(&ExperimentConfig {
            fault_plan: FaultPlan::single(fault, 30.0),
            ..config(scale, TechniqueKind::Baseline, 30.0)
        });
        println!("  {:<12}: AD {}", fault.name(), ad_cell(&result.ad));
    }
}
