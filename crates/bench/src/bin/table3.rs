//! Regenerates Table III: the architecture registry, with live parameter
//! counts at the current scale's width.

use tdfm_bench::banner;
use tdfm_data::Scale;
use tdfm_nn::models::{ModelConfig, ModelKind};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table III: neural network architectures",
        scale,
        "Section IV, Table III",
    );
    let cfg = ModelConfig {
        in_shape: (3, scale.image_side(), scale.image_side()),
        classes: 10,
        width: scale.model_width(),
        seed: 0,
    };
    println!(
        "{:<12}{:<10}{:<32}{:>12}",
        "Name", "Depth", "Architecture Summary", "Params"
    );
    println!("{}", "-".repeat(66));
    for kind in ModelKind::ALL {
        let info = kind.info();
        let mut net = kind.build(&cfg);
        println!(
            "{:<12}{:<10}{:<32}{:>12}",
            info.name,
            info.depth.to_string(),
            info.summary,
            net.param_count(),
        );
    }
    let infos: Vec<_> = ModelKind::ALL.iter().map(|k| k.info()).collect();
    let json = tdfm_json::to_string_pretty(&infos);
    match tdfm_bench::write_json("table3.json", &json) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
