//! Regenerates the motivating example (Section II) and its per-technique
//! follow-up (Section III-D): ResNet50 on Pneumonia with 10% mislabelling.
//!
//! Paper numbers: golden 90%, faulty 55%; technique ADs of 5% (LS),
//! 29% (LC), 15% (RL), 13% (KD), 5% (Ens).

use tdfm_bench::{ad_cell, banner, pct, results_to_json, write_json, write_manifest};
use tdfm_core::{ExperimentConfig, Runner, TechniqueKind};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::{FaultKind, FaultPlan};
use tdfm_nn::models::ModelKind;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Motivating example: Pneumonia + ResNet50 + 10% mislabelling",
        scale,
        "Sections II and III-D",
    );
    let runner = Runner::new();
    // The Pneumonia analogue is small and cheap to train, so the headline
    // example affords extra repetitions for tighter intervals.
    let reps = scale.repetitions().max(8);

    // One cell per technique (baseline first), run as one grid; every cell
    // shares the same golden models through the runner's cache.
    let configs: Vec<ExperimentConfig> = TechniqueKind::ALL
        .into_iter()
        .map(|technique| ExperimentConfig {
            dataset: DatasetKind::Pneumonia,
            model: ModelKind::ResNet50,
            technique,
            fault_plan: FaultPlan::single(FaultKind::Mislabelling, 10.0),
            scale,
            repetitions: reps,
            seed: 4,
        })
        .collect();
    let results = runner.run_grid(&configs);

    // Section II: accuracy collapse of the unprotected model.
    let base = &results[0];
    println!(
        "golden accuracy : {} (paper: 90%)",
        pct(base.golden_accuracy.mean)
    );
    println!(
        "faulty accuracy : {} (paper: 55%)",
        pct(base.faulty_accuracy.mean)
    );
    println!("baseline AD     : {}\n", ad_cell(&base.ad));

    // Section III-D: each technique applied to the faulty model.
    println!("{:<10}{:>16}{:>14}", "Technique", "AD (ours)", "AD (paper)");
    let paper_ad = [
        ("LS", "5%"),
        ("LC", "29%"),
        ("RL", "15%"),
        ("KD", "13%"),
        ("Ens", "5%"),
    ];
    for (technique, result) in TechniqueKind::ALL.into_iter().zip(&results).skip(1) {
        let paper = paper_ad
            .iter()
            .find(|(n, _)| *n == technique.abbrev())
            .map(|(_, v)| *v)
            .unwrap_or("-");
        println!(
            "{:<10}{:>16}{:>14}",
            technique.abbrev(),
            ad_cell(&result.ad),
            paper
        );
    }
    match write_json("motivating.json", &results_to_json(&results)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match write_manifest("motivating", &runner, &results) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write manifest: {e}"),
    }
    println!(
        "\nPaper shape check: mislabelling costs the unprotected model real accuracy;\n\
         LS and Ens should be the two lowest-AD techniques."
    );
}
