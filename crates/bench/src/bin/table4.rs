//! Regenerates Table IV: model accuracies when trained **without** fault
//! injection, for every technique (the golden-accuracy baseline of the
//! study).
//!
//! All 72 cells run as one [`Runner::run_grid`] call, fanned across the
//! thread budget (`TDFM_THREADS`); results come back in row-major order.
//!
//! Paper layout: rows = (model, dataset), columns = Base, LS, LC, RL, KD,
//! Ens; datasets 1 = CIFAR-10, 2 = GTSRB, 3 = Pneumonia.

use tdfm_bench::{banner, pct, results_to_json, write_json, write_manifest};
use tdfm_core::{ExperimentConfig, Runner, TechniqueKind};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::FaultPlan;
use tdfm_nn::models::ModelKind;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table IV: accuracies without fault injection",
        scale,
        "Section IV-A, Table IV",
    );
    let models = [
        ModelKind::ResNet50,
        ModelKind::Vgg16,
        ModelKind::ConvNet,
        ModelKind::MobileNet,
    ];
    let runner = Runner::new();
    // Accuracy percentages need fewer repetitions than the AD error bars.
    let reps = scale.repetitions().min(2);

    // Row-major grid: (model, dataset) rows x technique columns.
    let configs: Vec<ExperimentConfig> = models
        .iter()
        .flat_map(|&model| {
            DatasetKind::ALL.iter().flat_map(move |&dataset| {
                TechniqueKind::ALL
                    .into_iter()
                    .map(move |technique| ExperimentConfig {
                        dataset,
                        model,
                        technique,
                        fault_plan: FaultPlan::none(),
                        scale,
                        repetitions: reps,
                        seed: 4,
                    })
            })
        })
        .collect();
    let results = runner.run_grid(&configs);

    println!(
        "{:<11}{:<11}{:>7}{:>7}{:>7}{:>7}{:>7}{:>7}",
        "Model", "Dataset", "Base", "LS", "LC", "RL", "KD", "Ens"
    );
    println!("{}", "-".repeat(64));
    let mut cells = results.iter();
    for model in models {
        for (i, dataset) in DatasetKind::ALL.iter().enumerate() {
            print!(
                "{:<11}{:<11}",
                model.name(),
                format!("{} ({})", i + 1, dataset.name())
            );
            for _ in TechniqueKind::ALL {
                let result = cells.next().expect("grid covers every cell");
                print!("{:>7}", pct(result.faulty_accuracy.mean));
            }
            println!();
        }
    }
    match write_json("table4.json", &results_to_json(&results)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match write_manifest("table4", &runner, &results) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write manifest: {e}"),
    }
    println!(
        "\nPaper shape check: techniques should not collapse the golden accuracy in most \
         cells;\nLC and RL may degrade on Pneumonia (small dataset), as in the paper."
    );
}
