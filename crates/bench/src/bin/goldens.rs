//! Probe: golden (fault-free baseline) accuracy of every model on every
//! dataset at the current scale. A fast sanity check that every
//! architecture learns every synthetic dataset — the precondition for all
//! AD measurements.

use tdfm_bench::{banner, pct};
use tdfm_core::metrics::accuracy;
use tdfm_core::technique::{TechniqueKind, TrainContext};
use tdfm_data::{DatasetKind, Scale};
use tdfm_nn::models::ModelKind;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Golden accuracy probe (all models x datasets)",
        scale,
        "precondition for Table IV",
    );
    print!("{:<11}", "Model");
    for d in DatasetKind::ALL {
        print!("{:>11}", d.name());
    }
    println!();
    for model in ModelKind::ALL {
        print!("{:<11}", model.name());
        for dataset in DatasetKind::ALL {
            let data = dataset.generate(scale, 7);
            let mut ctx = TrainContext::new(scale, 7);
            ctx.tune_for(data.train.len());
            let start = std::time::Instant::now();
            let mut fitted = TechniqueKind::Baseline
                .build()
                .fit(model, &data.train, &ctx);
            let preds = fitted.predict(data.test.images());
            let acc = accuracy(&preds, data.test.labels());
            print!("{:>7} {:>2.0}s", pct(acc), start.elapsed().as_secs_f32());
        }
        println!();
    }
}
