//! Regenerates Fig. 3: AD of protected models vs the baseline on GTSRB,
//! with mislabelling faults (panels a-d) and removal faults (panels e-h),
//! for ResNet50, VGG16, ConvNet and MobileNet at 10/30/50% fault amounts.
//!
//! All cells of all eight panels are submitted as one grid to
//! [`Runner::run_grid`], which fans them across the machine's thread
//! budget (`TDFM_THREADS`); results come back in submission order, so the
//! printed panels are identical to a sequential run.
//!
//! Each panel is printed as the numeric series plus an ASCII bar chart of
//! the 30% column (the paper's middle dose).

use tdfm_bench::{ad_cell, banner, render_bars, results_to_json, write_json, write_manifest};
use tdfm_core::{ExperimentConfig, ExperimentResult, Runner, TechniqueKind};
use tdfm_data::{DatasetKind, Scale};
use tdfm_inject::{FaultKind, FaultPlan};
use tdfm_nn::models::ModelKind;

const PERCENTS: [f32; 3] = [10.0, 30.0, 50.0];

fn panel_configs(
    scale: Scale,
    dataset: DatasetKind,
    model: ModelKind,
    fault: FaultKind,
) -> Vec<(TechniqueKind, Vec<ExperimentConfig>)> {
    TechniqueKind::ALL
        .into_iter()
        .filter(|t| {
            // The paper does not run label correction on non-mislabelling
            // faults (it has no effect on them; Section IV-C).
            *t != TechniqueKind::LabelCorrection || fault == FaultKind::Mislabelling
        })
        .map(|technique| {
            // The mislabelling panels are the headline result and get the
            // full repetition budget; the (much flatter) removal panels
            // use one fewer.
            let reps = if fault == FaultKind::Mislabelling {
                scale.repetitions()
            } else {
                scale.repetitions().saturating_sub(1).max(2)
            };
            let series = PERCENTS
                .iter()
                .map(|&p| ExperimentConfig {
                    dataset,
                    model,
                    technique,
                    fault_plan: FaultPlan::single(fault, p),
                    scale,
                    repetitions: reps,
                    seed: 4,
                })
                .collect();
            (technique, series)
        })
        .collect()
}

fn print_panel(name: &str, rows: &[(TechniqueKind, Vec<ExperimentResult>)]) {
    println!("--- {name} ---");
    println!("{:<8}{:>15}{:>15}{:>15}", "Tech", "10%", "30%", "50%");
    for (technique, series) in rows {
        print!("{:<8}", technique.abbrev());
        for result in series {
            print!("{:>15}", ad_cell(&result.ad));
        }
        println!();
    }
    let bars: Vec<(String, f32, f32)> = rows
        .iter()
        .map(|(t, series)| {
            (
                t.abbrev().to_string(),
                series[1].ad.mean,
                series[1].ad.half_width,
            )
        })
        .collect();
    println!("\n{}", render_bars("AD at 30% (bar chart):", &bars));
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 3: AD on GTSRB (a-d mislabelling, e-h removal)",
        scale,
        "Section IV-B and IV-C, Fig. 3",
    );
    let models = [
        ModelKind::ResNet50,
        ModelKind::Vgg16,
        ModelKind::ConvNet,
        ModelKind::MobileNet,
    ];
    let runner = Runner::new();

    // Build every panel's cells up front, then run them as one grid.
    type PanelSeries = Vec<(TechniqueKind, Vec<ExperimentConfig>)>;
    let mut panels: Vec<(String, PanelSeries)> = Vec::new();
    let mut panel = b'a';
    for fault in [FaultKind::Mislabelling, FaultKind::Removal] {
        for model in models {
            panels.push((
                format!(
                    "Fig. 3{}: GTSRB, {}, {}",
                    panel as char,
                    model.name(),
                    fault
                ),
                panel_configs(scale, DatasetKind::Gtsrb, model, fault),
            ));
            panel += 1;
        }
    }
    let flat: Vec<ExperimentConfig> = panels
        .iter()
        .flat_map(|(_, rows)| rows.iter().flat_map(|(_, s)| s.iter().cloned()))
        .collect();
    let mut remaining = runner.run_grid(&flat).into_iter();

    let mut results = Vec::new();
    for (name, config_rows) in &panels {
        let rows: Vec<(TechniqueKind, Vec<ExperimentResult>)> = config_rows
            .iter()
            .map(|(t, series)| (*t, remaining.by_ref().take(series.len()).collect()))
            .collect();
        print_panel(name, &rows);
        results.extend(rows.into_iter().flat_map(|(_, s)| s));
    }
    match write_json("fig3.json", &results_to_json(&results)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match write_manifest("fig3", &runner, &results) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write manifest: {e}"),
    }
    println!(
        "\nPaper shape check: baseline AD grows with mislabelling; LS and Ens lowest;\n\
         KD good at 10% but worse than baseline at 30-50%; removal ADs much lower\n\
         than mislabelling ADs across the board."
    );
}
