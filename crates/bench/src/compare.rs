//! Benchmark regression gate: fresh run vs a committed baseline.
//!
//! `training_step --compare results/BENCH_trainer.json` re-runs the trainer
//! suite and diffs it against the committed [`BenchSuite`] document. The
//! gate fails when the **geometric mean** of the per-benchmark
//! `current/baseline` ratios exceeds `1 + threshold` — the geomean keeps a
//! single noisy cell from failing the build while still catching a broad
//! slowdown.
//!
//! Ratios are taken over `min_seconds`, not the mean: the minimum is the
//! least noise-contaminated estimate a wall-clock harness produces, which
//! matters on shared CI runners.

use crate::harness::BenchSuite;

/// One benchmark present in both suites.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparedBench {
    /// Benchmark label (`group/case`).
    pub name: String,
    /// Baseline `min_seconds`.
    pub baseline_seconds: f64,
    /// Fresh-run `min_seconds`.
    pub current_seconds: f64,
    /// `current / baseline`; below 1.0 means the fresh run is faster.
    pub ratio: f64,
}

/// The full diff of a fresh suite against a baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Benchmarks matched by name, in baseline order.
    pub rows: Vec<ComparedBench>,
    /// Baseline benchmarks the fresh run did not produce.
    pub missing: Vec<String>,
    /// Fresh benchmarks absent from the baseline (informational only).
    pub added: Vec<String>,
    /// Geometric mean of all matched ratios (1.0 when nothing matched).
    pub geomean_ratio: f64,
}

/// Geometric mean of a slice of positive ratios; `1.0` for an empty slice.
pub fn geomean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

/// Diffs `current` against `baseline`, matching benchmarks by name.
pub fn compare_suites(baseline: &BenchSuite, current: &BenchSuite) -> CompareReport {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for base in &baseline.reports {
        match current.reports.iter().find(|r| r.name == base.name) {
            Some(cur) => {
                let baseline_seconds = base.min_seconds.max(f64::MIN_POSITIVE);
                rows.push(ComparedBench {
                    name: base.name.clone(),
                    baseline_seconds: base.min_seconds,
                    current_seconds: cur.min_seconds,
                    ratio: cur.min_seconds / baseline_seconds,
                });
            }
            None => missing.push(base.name.clone()),
        }
    }
    let added = current
        .reports
        .iter()
        .filter(|r| !baseline.reports.iter().any(|b| b.name == r.name))
        .map(|r| r.name.clone())
        .collect();
    let ratios: Vec<f64> = rows.iter().map(|r| r.ratio).collect();
    CompareReport {
        rows,
        missing,
        added,
        geomean_ratio: geomean(&ratios),
    }
}

impl CompareReport {
    /// `true` when the suite is within the allowed regression budget.
    ///
    /// `threshold` is a fraction: `0.10` tolerates a 10% geomean slowdown.
    /// A baseline benchmark missing from the fresh run always fails — a
    /// silently dropped benchmark would otherwise flatter the geomean.
    pub fn passes(&self, threshold: f64) -> bool {
        self.missing.is_empty() && self.geomean_ratio <= 1.0 + threshold
    }

    /// Renders the diff as an aligned text table plus the verdict line.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>12} {:>12} {:>8}\n",
            "benchmark", "baseline", "current", "ratio"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<44} {:>10.3}ms {:>10.3}ms {:>7.2}x\n",
                row.name,
                1e3 * row.baseline_seconds,
                1e3 * row.current_seconds,
                row.ratio,
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("{name:<44} MISSING from fresh run\n"));
        }
        for name in &self.added {
            out.push_str(&format!("{name:<44} (new, not in baseline)\n"));
        }
        out.push_str(&format!(
            "geomean ratio {:.3}x vs allowed {:.3}x -> {}\n",
            self.geomean_ratio,
            1.0 + threshold,
            if self.passes(threshold) {
                "PASS"
            } else {
                "FAIL"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::BenchRecord;

    fn suite(rows: &[(&str, f64)]) -> BenchSuite {
        let mut s = BenchSuite::new("unit");
        for (name, min) in rows {
            s.reports.push(BenchRecord {
                name: (*name).to_string(),
                mean_seconds: *min * 1.1,
                min_seconds: *min,
                iters: 10,
                simd: "scalar".to_string(),
            });
        }
        s
    }

    #[test]
    fn geomean_of_empty_is_one() {
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        // geomean(0.5, 2.0) = 1.0; geomean(4, 1) = 2.
        assert!((geomean(&[0.5, 2.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn identical_suites_pass() {
        let base = suite(&[("a", 0.010), ("b", 0.020)]);
        let report = compare_suites(&base, &base);
        assert!((report.geomean_ratio - 1.0).abs() < 1e-12);
        assert!(report.passes(0.10));
        assert!(report.missing.is_empty() && report.added.is_empty());
    }

    #[test]
    fn broad_regression_fails_the_gate() {
        let base = suite(&[("a", 0.010), ("b", 0.020)]);
        let cur = suite(&[("a", 0.013), ("b", 0.026)]);
        let report = compare_suites(&base, &cur);
        assert!((report.geomean_ratio - 1.3).abs() < 1e-9);
        assert!(!report.passes(0.10));
        assert!(report.passes(0.35));
    }

    #[test]
    fn single_noisy_cell_does_not_fail_a_quiet_suite() {
        // One 2x outlier among eight flat cells: geomean = 2^(1/8) ~ 1.09.
        let names: Vec<String> = (0..8).map(|i| format!("bench{i}")).collect();
        let base = suite(
            &names
                .iter()
                .map(|n| (n.as_str(), 0.010))
                .collect::<Vec<_>>(),
        );
        let mut cur_rows: Vec<(&str, f64)> = names.iter().map(|n| (n.as_str(), 0.010)).collect();
        cur_rows[0].1 = 0.020;
        let cur = suite(&cur_rows);
        let report = compare_suites(&base, &cur);
        assert!(report.passes(0.10));
    }

    #[test]
    fn missing_benchmark_always_fails() {
        let base = suite(&[("a", 0.010), ("b", 0.020)]);
        let cur = suite(&[("a", 0.001)]);
        let report = compare_suites(&base, &cur);
        assert_eq!(report.missing, vec!["b".to_string()]);
        assert!(!report.passes(10.0));
    }

    #[test]
    fn added_benchmarks_are_informational() {
        let base = suite(&[("a", 0.010)]);
        let cur = suite(&[("a", 0.010), ("c", 0.5)]);
        let report = compare_suites(&base, &cur);
        assert_eq!(report.added, vec!["c".to_string()]);
        assert!(report.passes(0.10));
    }

    #[test]
    fn render_includes_verdict() {
        let base = suite(&[("a", 0.010)]);
        let report = compare_suites(&base, &base);
        let text = report.render(0.10);
        assert!(text.contains("geomean ratio"));
        assert!(text.contains("PASS"));
    }
}
