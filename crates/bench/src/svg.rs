//! Paper-style SVG bar charts, dependency-free.
//!
//! The harness binaries print ASCII bars for terminals; this module
//! renders the same panels as standalone SVG documents (grouped bars with
//! 95% error whiskers, like the paper's Figs. 3 and 4) so results can be
//! dropped into a report. Everything is plain string generation and fully
//! unit-tested.

/// One bar: a label, a value in `[0, 1]`, and a 95% half-width.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Category label under the bar (e.g. `"LS"`).
    pub label: String,
    /// Bar height as a fraction (AD or accuracy).
    pub value: f32,
    /// Error-whisker half-height as a fraction.
    pub half_width: f32,
}

/// A group of bars sharing an x position (e.g. one fault percentage).
#[derive(Debug, Clone, PartialEq)]
pub struct BarGroup {
    /// Group label on the x axis (e.g. `"30%"`).
    pub label: String,
    /// The group's bars, one per technique.
    pub bars: Vec<Bar>,
}

/// Chart geometry and labels.
#[derive(Debug, Clone)]
pub struct PanelSpec {
    /// Panel title (e.g. `"Fig. 3a: GTSRB, ResNet50, Mislabelling"`).
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl Default for PanelSpec {
    fn default() -> Self {
        Self {
            title: String::new(),
            y_label: "Accuracy Delta (%)".to_string(),
            width: 640,
            height: 360,
        }
    }
}

/// Colour-blind-safe palette for up to six techniques (Okabe–Ito).
const PALETTE: [&str; 6] = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders one grouped-bar panel as a complete SVG document.
///
/// The y-axis spans `[0, max(value + half_width)]` rounded up to a decade
/// fraction; groups are evenly spaced; each distinct bar label gets one
/// palette colour and a legend entry.
///
/// # Panics
///
/// Panics if `groups` is empty or any group has no bars.
pub fn render_panel(spec: &PanelSpec, groups: &[BarGroup]) -> String {
    assert!(!groups.is_empty(), "panel needs at least one group");
    assert!(
        groups.iter().all(|g| !g.bars.is_empty()),
        "every group needs bars"
    );

    let (w, h) = (spec.width as f32, spec.height as f32);
    let margin = (60.0, 40.0, 30.0, 50.0); // left, top, right, bottom
    let plot_w = w - margin.0 - margin.2;
    let plot_h = h - margin.1 - margin.3;

    // Scale: fixed "nice" ceiling.
    let raw_max = groups
        .iter()
        .flat_map(|g| g.bars.iter())
        .map(|b| b.value + b.half_width)
        .fold(0.0f32, f32::max)
        .max(0.05);
    let y_max = (raw_max * 10.0).ceil() / 10.0;

    // Legend entries: distinct labels in first-seen order.
    let mut legend: Vec<&str> = Vec::new();
    for bar in groups.iter().flat_map(|g| g.bars.iter()) {
        if !legend.contains(&bar.label.as_str()) {
            legend.push(&bar.label);
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         viewBox=\"0 0 {} {}\" font-family=\"sans-serif\" font-size=\"11\">\n",
        spec.width, spec.height, spec.width, spec.height
    ));
    out.push_str(&format!(
        "<text x=\"{}\" y=\"18\" text-anchor=\"middle\" font-size=\"13\">{}</text>\n",
        w / 2.0,
        esc(&spec.title)
    ));
    // Axes.
    out.push_str(&format!(
        "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#333\"/>\n",
        margin.0,
        margin.1,
        margin.0,
        margin.1 + plot_h
    ));
    out.push_str(&format!(
        "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#333\"/>\n",
        margin.0,
        margin.1 + plot_h,
        margin.0 + plot_w,
        margin.1 + plot_h
    ));
    out.push_str(&format!(
        "<text x=\"14\" y=\"{}\" transform=\"rotate(-90 14 {})\" text-anchor=\"middle\">{}</text>\n",
        margin.1 + plot_h / 2.0,
        margin.1 + plot_h / 2.0,
        esc(&spec.y_label)
    ));
    // Y ticks at 0, 25, 50, 75, 100% of y_max.
    for i in 0..=4 {
        let frac = i as f32 / 4.0;
        let y = margin.1 + plot_h * (1.0 - frac);
        out.push_str(&format!(
            "<line x1=\"{}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"#ccc\" stroke-dasharray=\"3 3\"/>\n",
            margin.0,
            margin.0 + plot_w
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{:.0}</text>\n",
            margin.0 - 6.0,
            y + 4.0,
            100.0 * y_max * frac
        ));
    }

    // Bars.
    let group_w = plot_w / groups.len() as f32;
    for (gi, group) in groups.iter().enumerate() {
        let n = group.bars.len() as f32;
        let slot = group_w * 0.8 / n;
        let start = margin.0 + gi as f32 * group_w + group_w * 0.1;
        for (bi, bar) in group.bars.iter().enumerate() {
            let x = start + bi as f32 * slot;
            let frac = (bar.value / y_max).clamp(0.0, 1.0);
            let bh = plot_h * frac;
            let y = margin.1 + plot_h - bh;
            let color_idx = legend.iter().position(|&l| l == bar.label).unwrap_or(0);
            let color = PALETTE[color_idx % PALETTE.len()];
            out.push_str(&format!(
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{}\"><title>{} = {:.1}% ± {:.1}</title></rect>\n",
                x,
                y,
                slot * 0.9,
                bh,
                color,
                esc(&bar.label),
                100.0 * bar.value,
                100.0 * bar.half_width
            ));
            // Error whisker.
            if bar.half_width > 0.0 {
                let cx = x + slot * 0.45;
                let up = margin.1
                    + plot_h * (1.0 - ((bar.value + bar.half_width) / y_max).clamp(0.0, 1.0));
                let dn = margin.1
                    + plot_h
                        * (1.0 - ((bar.value - bar.half_width).max(0.0) / y_max).clamp(0.0, 1.0));
                out.push_str(&format!(
                    "<line x1=\"{cx:.1}\" y1=\"{up:.1}\" x2=\"{cx:.1}\" y2=\"{dn:.1}\" stroke=\"#000\"/>\n"
                ));
            }
        }
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
            margin.0 + gi as f32 * group_w + group_w / 2.0,
            margin.1 + plot_h + 16.0,
            esc(&group.label)
        ));
    }

    // Legend.
    for (i, label) in legend.iter().enumerate() {
        let x = margin.0 + 8.0 + i as f32 * 70.0;
        let y = margin.1 + 6.0;
        out.push_str(&format!(
            "<rect x=\"{x}\" y=\"{y}\" width=\"10\" height=\"10\" fill=\"{}\"/>\n",
            PALETTE[i % PALETTE.len()]
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\">{}</text>\n",
            x + 14.0,
            y + 9.0,
            esc(label)
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Builds the group structure of one figure panel from experiment results:
/// one group per fault percentage, one bar per technique.
pub fn panel_from_results(
    results: &[tdfm_core::ExperimentResult],
    percents: &[f32],
) -> Vec<BarGroup> {
    percents
        .iter()
        .map(|&p| {
            let label = format!("{p:.0}%");
            let bars = results
                .iter()
                .filter(|r| {
                    r.config
                        .fault_plan
                        .specs()
                        .first()
                        .is_some_and(|s| (s.percent - p).abs() < 1e-6)
                })
                .map(|r| Bar {
                    label: r.config.technique.abbrev().to_string(),
                    value: r.ad.mean,
                    half_width: r.ad.half_width,
                })
                .collect();
            BarGroup { label, bars }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_groups() -> Vec<BarGroup> {
        vec![
            BarGroup {
                label: "10%".to_string(),
                bars: vec![
                    Bar {
                        label: "Base".to_string(),
                        value: 0.10,
                        half_width: 0.02,
                    },
                    Bar {
                        label: "Ens".to_string(),
                        value: 0.02,
                        half_width: 0.01,
                    },
                ],
            },
            BarGroup {
                label: "30%".to_string(),
                bars: vec![
                    Bar {
                        label: "Base".to_string(),
                        value: 0.30,
                        half_width: 0.05,
                    },
                    Bar {
                        label: "Ens".to_string(),
                        value: 0.08,
                        half_width: 0.02,
                    },
                ],
            },
        ]
    }

    #[test]
    fn renders_well_formed_svg() {
        let spec = PanelSpec {
            title: "Fig. test".to_string(),
            ..PanelSpec::default()
        };
        let svg = render_panel(&spec, &sample_groups());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 4 bars + 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 6);
        // Every bar has an error whisker plus the two axes + 5 gridlines.
        assert_eq!(svg.matches("<line").count(), 4 + 2 + 5);
        assert!(svg.contains("Fig. test"));
        assert!(svg.contains(">10%<"));
        assert!(svg.contains(">30%<"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let spec = PanelSpec {
            title: "a < b & c".to_string(),
            ..PanelSpec::default()
        };
        let groups = vec![BarGroup {
            label: "g".to_string(),
            bars: vec![Bar {
                label: "x".to_string(),
                value: 0.1,
                half_width: 0.0,
            }],
        }];
        let svg = render_panel(&spec, &groups);
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn legend_is_deduplicated_across_groups() {
        let svg = render_panel(&PanelSpec::default(), &sample_groups());
        // "Base" appears in tooltips and once in the legend text.
        let legend_entries = svg.matches(">Base<").count();
        assert_eq!(legend_entries, 1);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn empty_panel_rejected() {
        let _ = render_panel(&PanelSpec::default(), &[]);
    }

    #[test]
    fn zero_half_width_has_no_whisker() {
        let groups = vec![BarGroup {
            label: "g".to_string(),
            bars: vec![Bar {
                label: "x".to_string(),
                value: 0.2,
                half_width: 0.0,
            }],
        }];
        let svg = render_panel(&PanelSpec::default(), &groups);
        // Axes (2) + gridlines (5), no whisker lines.
        assert_eq!(svg.matches("<line").count(), 7);
    }
}
