//! Minimal wall-clock micro-benchmark harness.
//!
//! The `benches/` targets are plain `harness = false` binaries built on
//! this module, so the workspace benchmarks run without any external
//! benchmarking framework. Reports are printed one line per benchmark
//! (mean, min, iteration count) — enough to compare the relative costs
//! the Section IV-E analysis cares about.

use std::time::{Duration, Instant};
use tdfm_json::json_struct;
use tdfm_obs::{event, Level};

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark label.
    pub name: String,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Number of measured iterations.
    pub iters: u32,
}

/// Runs `f` repeatedly and prints one report line.
///
/// A short warm-up sizes the measurement loop so cheap kernels get many
/// iterations while whole training runs get few; total measurement time
/// stays around a second per benchmark.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> BenchReport {
    // Warm-up: at least one run, at most ~200 ms.
    let warm_start = Instant::now();
    let mut warm_iters = 0u32;
    while warm_iters == 0 || (warm_start.elapsed() < Duration::from_millis(200) && warm_iters < 20)
    {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed() / warm_iters;
    let target = Duration::from_secs(1);
    let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(3, 100) as u32;

    let mut times = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        times.push(t.elapsed());
    }
    let mean = times.iter().sum::<Duration>() / iters;
    let min = *times.iter().min().expect("at least one iteration");
    println!("{name:<44} mean {mean:>12.3?}  min {min:>12.3?}  ({iters} iters)");
    tdfm_obs::global()
        .histogram(&format!("bench.{name}"))
        .record(mean);
    event!(
        Level::Debug,
        "bench",
        name = name,
        mean_seconds = mean.as_secs_f64(),
        min_seconds = min.as_secs_f64(),
        iters = iters,
    );
    BenchReport {
        name: name.to_string(),
        mean,
        min,
        iters,
    }
}

/// Prints a section header for a group of related benchmarks.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

/// One [`BenchReport`] as serialised into a [`BenchSuite`] document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark label.
    pub name: String,
    /// Mean wall-clock seconds per iteration.
    pub mean_seconds: f64,
    /// Fastest observed iteration, in seconds.
    pub min_seconds: f64,
    /// Number of measured iterations.
    pub iters: u32,
}

json_struct!(BenchRecord {
    name,
    mean_seconds,
    min_seconds,
    iters
});

/// A machine-readable benchmark baseline: every report of one `benches/`
/// binary plus the process metrics snapshot at the end of the run (kernel
/// histograms, counters). `BENCH_trainer.json` is one of these.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSuite {
    /// Suite name (the bench binary's stem).
    pub name: String,
    /// Seconds since the Unix epoch when the suite finished.
    pub created_unix: u64,
    /// One record per benchmark, in execution order.
    pub reports: Vec<BenchRecord>,
    /// Process-global counter/histogram snapshot taken by [`Self::to_json`].
    pub metrics: tdfm_obs::MetricsSnapshot,
}

json_struct!(BenchSuite {
    name,
    created_unix,
    reports,
    metrics
});

impl BenchSuite {
    /// Creates an empty suite stamped with the current time.
    pub fn new(name: impl Into<String>) -> Self {
        let created_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Self {
            name: name.into(),
            created_unix,
            reports: Vec::new(),
            metrics: tdfm_obs::MetricsSnapshot::default(),
        }
    }

    /// Appends one benchmark's report.
    pub fn push(&mut self, report: &BenchReport) {
        self.reports.push(BenchRecord {
            name: report.name.clone(),
            mean_seconds: report.mean.as_secs_f64(),
            min_seconds: report.min.as_secs_f64(),
            iters: report.iters,
        });
    }

    /// Serialises to pretty JSON, refreshing the embedded metrics snapshot
    /// so kernel-op histograms cover every benchmark that ran.
    pub fn to_json(&mut self) -> String {
        self.metrics = tdfm_obs::global().snapshot();
        tdfm_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_reports() {
        let report = bench("noop", || 1 + 1);
        assert!(report.iters >= 3);
        assert!(report.mean >= report.min);
        // The harness records every benchmark into the global registry.
        let snap = tdfm_obs::global().snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "bench.noop")
            .expect("bench histogram registered");
        assert!(hist.count >= 1);
    }

    #[test]
    fn suite_round_trips_with_metrics() {
        let mut suite = BenchSuite::new("unit");
        suite.push(&bench("suite_noop", || 2 + 2));
        let json = suite.to_json();
        let back: BenchSuite = tdfm_json::from_str(&json).unwrap();
        assert_eq!(back.reports.len(), 1);
        assert_eq!(back.reports[0].name, "suite_noop");
        assert!(back.reports[0].iters >= 3);
        assert!(back
            .metrics
            .histograms
            .iter()
            .any(|h| h.name == "bench.suite_noop"));
    }
}
