//! Minimal wall-clock micro-benchmark harness.
//!
//! The `benches/` targets are plain `harness = false` binaries built on
//! this module, so the workspace benchmarks run without any external
//! benchmarking framework. Reports are printed one line per benchmark
//! (mean, min, iteration count) — enough to compare the relative costs
//! the Section IV-E analysis cares about.

use std::time::{Duration, Instant};

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark label.
    pub name: String,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Number of measured iterations.
    pub iters: u32,
}

/// Runs `f` repeatedly and prints one report line.
///
/// A short warm-up sizes the measurement loop so cheap kernels get many
/// iterations while whole training runs get few; total measurement time
/// stays around a second per benchmark.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> BenchReport {
    // Warm-up: at least one run, at most ~200 ms.
    let warm_start = Instant::now();
    let mut warm_iters = 0u32;
    while warm_iters == 0 || (warm_start.elapsed() < Duration::from_millis(200) && warm_iters < 20)
    {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed() / warm_iters;
    let target = Duration::from_secs(1);
    let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(3, 100) as u32;

    let mut times = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        times.push(t.elapsed());
    }
    let mean = times.iter().sum::<Duration>() / iters;
    let min = *times.iter().min().expect("at least one iteration");
    println!("{name:<44} mean {mean:>12.3?}  min {min:>12.3?}  ({iters} iters)");
    BenchReport {
        name: name.to_string(),
        mean,
        min,
        iters,
    }
}

/// Prints a section header for a group of related benchmarks.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_reports() {
        let report = bench("noop", || 1 + 1);
        assert!(report.iters >= 3);
        assert!(report.mean >= report.min);
    }
}
