//! Minimal wall-clock micro-benchmark harness.
//!
//! The `benches/` targets are plain `harness = false` binaries built on
//! this module, so the workspace benchmarks run without any external
//! benchmarking framework. Reports are printed one line per benchmark
//! (mean, min, iteration count) — enough to compare the relative costs
//! the Section IV-E analysis cares about.

use std::time::{Duration, Instant};
use tdfm_json::json_struct;
use tdfm_obs::{event, Level};

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark label.
    pub name: String,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Number of measured iterations.
    pub iters: u32,
}

/// Runs `f` repeatedly and prints one report line.
///
/// A short warm-up sizes the measurement loop so cheap kernels get many
/// iterations while whole training runs get few; total measurement time
/// stays around a second per benchmark.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> BenchReport {
    // Warm-up: at least one run, at most ~200 ms.
    let warm_start = Instant::now();
    let mut warm_iters = 0u32;
    while warm_iters == 0 || (warm_start.elapsed() < Duration::from_millis(200) && warm_iters < 20)
    {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed() / warm_iters;
    let target = Duration::from_secs(1);
    let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(3, 100) as u32;

    let mut times = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        times.push(t.elapsed());
    }
    let mean = times.iter().sum::<Duration>() / iters;
    let min = *times.iter().min().expect("at least one iteration");
    println!("{name:<44} mean {mean:>12.3?}  min {min:>12.3?}  ({iters} iters)");
    tdfm_obs::global()
        .histogram(&format!("bench.{name}"))
        .record(mean);
    event!(
        Level::Debug,
        "bench",
        name = name,
        mean_seconds = mean.as_secs_f64(),
        min_seconds = min.as_secs_f64(),
        iters = iters,
    );
    BenchReport {
        name: name.to_string(),
        mean,
        min,
        iters,
    }
}

/// Prints a section header for a group of related benchmarks.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

/// One [`BenchReport`] as serialised into a [`BenchSuite`] document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark label.
    pub name: String,
    /// Mean wall-clock seconds per iteration.
    pub mean_seconds: f64,
    /// Fastest observed iteration, in seconds.
    pub min_seconds: f64,
    /// Number of measured iterations.
    pub iters: u32,
    /// SIMD level the kernels dispatched to while this cell ran
    /// (`"avx2"`, `"sse2"` or `"scalar"`) — provenance, so a baseline
    /// recorded on one machine is never silently compared across
    /// instruction sets. Empty in pre-SIMD baselines (defaulted on read).
    pub simd: String,
}

json_struct!(BenchRecord {
    name,
    mean_seconds,
    min_seconds,
    iters,
    simd = default
});

/// A machine-readable benchmark baseline: every report of one `benches/`
/// binary plus the process metrics snapshot at the end of the run (kernel
/// histograms, counters). `BENCH_trainer.json` is one of these.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSuite {
    /// Suite name (the bench binary's stem).
    pub name: String,
    /// Seconds since the Unix epoch when the suite finished.
    pub created_unix: u64,
    /// One record per benchmark, in execution order.
    pub reports: Vec<BenchRecord>,
    /// Process-global counter/histogram snapshot taken by [`Self::to_json`].
    pub metrics: tdfm_obs::MetricsSnapshot,
}

json_struct!(BenchSuite {
    name,
    created_unix,
    reports,
    metrics
});

impl BenchSuite {
    /// Creates an empty suite stamped with the current time.
    pub fn new(name: impl Into<String>) -> Self {
        let created_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Self {
            name: name.into(),
            created_unix,
            reports: Vec::new(),
            metrics: tdfm_obs::MetricsSnapshot::default(),
        }
    }

    /// Appends one benchmark's report, stamping the SIMD level the
    /// kernels are currently dispatching to.
    pub fn push(&mut self, report: &BenchReport) {
        self.reports.push(BenchRecord {
            name: report.name.clone(),
            mean_seconds: report.mean.as_secs_f64(),
            min_seconds: report.min.as_secs_f64(),
            iters: report.iters,
            simd: tdfm_tensor::simd::simd_name().to_string(),
        });
    }

    /// Serialises to pretty JSON, refreshing the embedded metrics snapshot
    /// so kernel-op histograms cover every benchmark that ran.
    pub fn to_json(&mut self) -> String {
        self.metrics = tdfm_obs::global().snapshot();
        tdfm_json::to_string_pretty(self)
    }
}

/// One thread-count cell of a [`ScalingCurve`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Worker-thread count the cell was pinned to (`set_num_threads`).
    pub threads: u32,
    /// Mean wall-clock seconds per iteration at that count.
    pub mean_seconds: f64,
    /// Fastest observed iteration, in seconds.
    pub min_seconds: f64,
}

json_struct!(ScalingPoint {
    threads,
    mean_seconds,
    min_seconds
});

/// Throughput-vs-threads measurements of one workload — the scaling
/// artefact `training_step --scaling-out` writes (a JSON array of these)
/// and `tdfm figures` renders as a speedup curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingCurve {
    /// Workload label (e.g. the model name).
    pub name: String,
    /// SIMD level of the run, as in [`BenchRecord::simd`].
    pub simd: String,
    /// One point per thread count, in measurement order.
    pub points: Vec<ScalingPoint>,
}

json_struct!(ScalingCurve {
    name,
    simd = default,
    points
});

impl ScalingCurve {
    /// `(threads, speedup)` pairs relative to the single-thread cell,
    /// computed over `min_seconds`. Empty when the curve has no
    /// single-thread point to normalise against.
    pub fn speedups(&self) -> Vec<(u32, f64)> {
        let Some(base) = self.points.iter().find(|p| p.threads == 1) else {
            return Vec::new();
        };
        self.points
            .iter()
            .map(|p| {
                (
                    p.threads,
                    base.min_seconds / p.min_seconds.max(f64::MIN_POSITIVE),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_reports() {
        let report = bench("noop", || 1 + 1);
        assert!(report.iters >= 3);
        assert!(report.mean >= report.min);
        // The harness records every benchmark into the global registry.
        let snap = tdfm_obs::global().snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "bench.noop")
            .expect("bench histogram registered");
        assert!(hist.count >= 1);
    }

    #[test]
    fn suite_round_trips_with_metrics() {
        let mut suite = BenchSuite::new("unit");
        suite.push(&bench("suite_noop", || 2 + 2));
        let json = suite.to_json();
        let back: BenchSuite = tdfm_json::from_str(&json).unwrap();
        assert_eq!(back.reports.len(), 1);
        assert_eq!(back.reports[0].name, "suite_noop");
        assert!(back.reports[0].iters >= 3);
        // Every record carries the dispatch level it was measured under.
        let levels = ["avx2", "sse2", "scalar"];
        assert!(levels.contains(&back.reports[0].simd.as_str()));
        assert!(back
            .metrics
            .histograms
            .iter()
            .any(|h| h.name == "bench.suite_noop"));
    }

    #[test]
    fn pre_simd_baselines_still_parse() {
        // Committed baselines from before the `simd` field must load with
        // the field defaulted, so the compare gate keeps working across
        // the transition.
        let old = r#"{"name": "x", "mean_seconds": 0.2, "min_seconds": 0.1, "iters": 5}"#;
        let rec: BenchRecord = tdfm_json::from_str(old).unwrap();
        assert_eq!(rec.simd, "");
        assert_eq!(rec.iters, 5);
    }

    #[test]
    fn scaling_curve_round_trips_and_normalises() {
        let curve = ScalingCurve {
            name: "ConvNet".to_string(),
            simd: "avx2".to_string(),
            points: vec![
                ScalingPoint {
                    threads: 1,
                    mean_seconds: 0.044,
                    min_seconds: 0.040,
                },
                ScalingPoint {
                    threads: 4,
                    mean_seconds: 0.022,
                    min_seconds: 0.020,
                },
            ],
        };
        let json = tdfm_json::to_string(&vec![curve.clone()]);
        let back: Vec<ScalingCurve> = tdfm_json::from_str(&json).unwrap();
        assert_eq!(back, vec![curve.clone()]);
        let speedups = curve.speedups();
        assert_eq!(speedups[0], (1, 1.0));
        assert_eq!(speedups[1], (4, 2.0));
    }

    #[test]
    fn scaling_speedups_need_a_single_thread_base() {
        let curve = ScalingCurve {
            name: "x".to_string(),
            simd: String::new(),
            points: vec![ScalingPoint {
                threads: 2,
                mean_seconds: 0.1,
                min_seconds: 0.1,
            }],
        };
        assert!(curve.speedups().is_empty());
    }
}
