#![forbid(unsafe_code)]
//! # tdfm-bench
//!
//! The experiment harness regenerating every table and figure of the TDFM
//! paper. Each binary prints the paper's rows/series at the scale selected
//! by the `TDFM_SCALE` environment variable (`tiny|smoke|default|full`) and
//! writes machine-readable JSON under `results/`.
//!
//! | Binary         | Reproduces                                     |
//! |----------------|------------------------------------------------|
//! | `table1`       | Table I (survey selection matrix)              |
//! | `table2`       | Table II (dataset registry)                    |
//! | `table3`       | Table III (architecture registry)              |
//! | `table4`       | Table IV (golden accuracies)                   |
//! | `fig3`         | Fig. 3a–h (AD on GTSRB, mislabelling/removal)  |
//! | `fig4`         | Fig. 4a–f (AD across datasets)                 |
//! | `overhead`     | Section IV-E (runtime overheads)               |
//! | `motivating`   | Section II + III-D (Pneumonia example)         |
//! | `fault_combos` | Section IV-C (combined fault types)            |
//! | `ablation`     | DESIGN.md §4 (ensemble diversity, KD, LC, LS)  |
//! | `shard_faults` | DESIGN.md §2.10 (Byzantine-robust aggregation) |

pub mod compare;
pub mod figures;
pub mod harness;
pub mod svg;

use std::io::Write as _;
use std::path::{Path, PathBuf};
use tdfm_core::{ExperimentResult, Runner};
use tdfm_data::Scale;

/// Where experiment binaries drop their JSON results.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("TDFM_RESULTS").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Writes a JSON document under [`results_dir`], creating it if needed.
///
/// # Errors
///
/// Returns any filesystem error encountered.
pub fn write_json(name: &str, payload: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(payload.as_bytes())?;
    Ok(path)
}

/// Writes the run's manifest next to its results under [`results_dir`]
/// as `<stem>.manifest.json` (e.g. `results/table4.manifest.json`): the
/// grid with per-cell wall times plus the runner's and the process-global
/// metrics. `tdfm report` consumes it.
///
/// # Errors
///
/// Returns any filesystem error encountered.
pub fn write_manifest(
    stem: &str,
    runner: &Runner,
    results: &[ExperimentResult],
) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{stem}.manifest.json"));
    runner.manifest(stem, results).write(&path)?;
    Ok(path)
}

/// Serialises a batch of experiment results to one JSON array document.
pub fn results_to_json(results: &[ExperimentResult]) -> String {
    let inner: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    format!("[\n{}\n]", inner.join(",\n"))
}

/// [`write_manifest`] for the model-fault runner: writes
/// `<stem>.manifest.json` under [`results_dir`]; `tdfm report` reads it
/// with the same code path as the data-fault manifests.
///
/// # Errors
///
/// Returns any filesystem error encountered.
pub fn write_model_fault_manifest(
    stem: &str,
    runner: &tdfm_core::ModelFaultRunner,
    results: &[tdfm_core::ModelFaultResult],
) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{stem}.manifest.json"));
    runner.manifest(stem, results).write(&path)?;
    Ok(path)
}

/// Serialises a batch of model-fault results to one JSON array document.
pub fn model_fault_results_to_json(results: &[tdfm_core::ModelFaultResult]) -> String {
    let inner: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    format!("[\n{}\n]", inner.join(",\n"))
}

/// [`write_manifest`] for the sharded-training runner: writes
/// `<stem>.manifest.json` under [`results_dir`]; `tdfm report` reads it
/// with the same code path as the data-fault manifests.
///
/// # Errors
///
/// Returns any filesystem error encountered.
pub fn write_shard_fault_manifest(
    stem: &str,
    runner: &tdfm_core::ShardFaultRunner,
    results: &[tdfm_core::ShardFaultResult],
) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{stem}.manifest.json"));
    runner.manifest(stem, results).write(&path)?;
    Ok(path)
}

/// Serialises a batch of shard-fault results to one JSON array document.
pub fn shard_fault_results_to_json(results: &[tdfm_core::ShardFaultResult]) -> String {
    let inner: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    format!("[\n{}\n]", inner.join(",\n"))
}

/// Prints the standard harness banner: what is being reproduced, at which
/// scale, and where the paper's version of the numbers lives.
pub fn banner(what: &str, scale: Scale, paper_ref: &str) {
    println!("=== {what} ===");
    println!("scale: {scale} (set TDFM_SCALE=tiny|smoke|default|full)");
    println!("paper reference: {paper_ref}");
    println!();
}

/// Formats a percentage cell like the paper's tables (`"93%"`).
pub fn pct(x: f32) -> String {
    format!("{:.0}%", 100.0 * x)
}

/// Formats an AD value with its confidence half-width (`"12.3 ± 4.5"`,
/// both in percent).
pub fn ad_cell(ci: &tdfm_core::ConfidenceInterval) -> String {
    format!("{:5.1} ± {:4.1}", 100.0 * ci.mean, 100.0 * ci.half_width)
}

/// `true` when a results file exists (lets EXPERIMENTS.md link stable
/// artefacts).
pub fn result_exists(name: &str) -> bool {
    Path::new(&results_dir()).join(name).exists()
}

/// Renders one figure panel as horizontal ASCII bars — the terminal
/// analogue of the paper's bar charts. Values are percentages in `[0, 1]`;
/// the `+-` suffix shows the 95% half-width.
pub fn render_bars(title: &str, series: &[(String, f32, f32)]) -> String {
    const WIDTH: usize = 40;
    let mut out = format!("{title}\n");
    let max = series
        .iter()
        .map(|(_, v, _)| *v)
        .fold(0.0f32, f32::max)
        .max(1e-6);
    for (label, value, half) in series {
        let filled = ((value / max) * WIDTH as f32).round() as usize;
        out.push_str(&format!(
            "  {:<10} |{:<width$}| {:5.1}% +- {:4.1}\n",
            label,
            "#".repeat(filled.min(WIDTH)),
            100.0 * value,
            100.0 * half,
            width = WIDTH
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.93), "93%");
        assert_eq!(pct(0.906), "91%");
        assert_eq!(pct(1.0), "100%");
    }

    #[test]
    fn ad_cell_formats_mean_and_width() {
        let ci = tdfm_core::ConfidenceInterval {
            mean: 0.123,
            half_width: 0.045,
        };
        assert_eq!(ad_cell(&ci), " 12.3 ±  4.5");
    }

    #[test]
    fn render_bars_scales_to_max() {
        let s = render_bars(
            "panel",
            &[
                ("Base".to_string(), 0.4, 0.1),
                ("Ens".to_string(), 0.1, 0.02),
            ],
        );
        assert!(s.starts_with("panel\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // The largest value fills the full bar width.
        assert!(lines[1].contains(&"#".repeat(40)));
        assert!(lines[1].contains("40.0%"));
        assert!(lines[2].contains("10.0%"));
    }

    #[test]
    fn render_bars_handles_all_zero() {
        let s = render_bars("z", &[("a".to_string(), 0.0, 0.0)]);
        assert!(s.contains("0.0%"));
    }

    #[test]
    fn write_json_creates_file() {
        std::env::set_var("TDFM_RESULTS", "/tmp/tdfm-test-results");
        let path = write_json("unit.json", "[]").unwrap();
        assert!(path.exists());
        assert!(result_exists("unit.json"));
        std::fs::remove_file(path).unwrap();
        std::env::remove_var("TDFM_RESULTS");
    }
}
