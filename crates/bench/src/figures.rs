//! Results → figures: turns committed result JSONs into deterministic
//! SVG charts (the `tdfm figures` subcommand).
//!
//! The renderer primitives live in [`tdfm_obs::figure`]; this module owns
//! the *semantics* — which chart a results document becomes:
//!
//! * An array of [`ExperimentResult`]s (data-fault sweeps — `fig3.json`,
//!   `motivating.json`, `tdfm sweep` output) groups by
//!   (dataset, model, fault kinds). Groups spanning several fault rates
//!   render as AD-vs-fault-rate curves per technique (the paper's Fig. 3
//!   shape); single-rate groups render as a per-technique error-bar
//!   scatter (the Fig. 4 / motivating-example shape).
//! * An array of [`ModelFaultResult`]s (`model_faults.json`) renders a
//!   technique × fault-plan AD heatmap and a fault-rate × bit-position AD
//!   heatmap of the unprotected baseline.
//! * An array of [`ShardFaultResult`]s (`shard_faults.json`) renders an
//!   aggregator × fault-rate AD heatmap (the Byzantine-robustness
//!   picture: Mean's row heats up with the victim rate, the robust rows
//!   stay cold).
//! * An array of [`ScalingCurve`]s (`training_step --scaling-out`) renders
//!   a throughput-vs-threads speedup chart, one series per workload. This
//!   one plots *measurements*, so unlike the result figures it is a CI
//!   artefact, not a committed drift-gated SVG.
//!
//! Everything downstream of the parsed JSON is a pure function, so the
//! committed SVGs are byte-identical across regenerations, machines and
//! `TDFM_THREADS` settings — CI drift-gates them like result JSONs.

use crate::harness::ScalingCurve;
use std::collections::BTreeMap;
use tdfm_core::{ExperimentResult, ModelFaultResult, ShardFaultResult};
use tdfm_obs::{Heatmap, LineChart, Series};

/// Renders every figure a results document supports.
///
/// Returns `(file name, svg document)` pairs in deterministic order. The
/// document must be a JSON array of experiment results or of model-fault
/// results.
///
/// # Errors
///
/// Returns a description of a parse failure or an empty/unrecognised
/// document.
pub fn render_figures(text: &str) -> Result<Vec<(String, String)>, String> {
    if let Ok(results) = tdfm_json::from_str::<Vec<ExperimentResult>>(text) {
        if !results.is_empty() {
            return Ok(experiment_figures(&results));
        }
    }
    if let Ok(results) = tdfm_json::from_str::<Vec<ModelFaultResult>>(text) {
        if !results.is_empty() {
            return Ok(model_fault_figures(&results));
        }
    }
    if let Ok(results) = tdfm_json::from_str::<Vec<ShardFaultResult>>(text) {
        if !results.is_empty() {
            return Ok(shard_fault_figures(&results));
        }
    }
    if let Ok(curves) = tdfm_json::from_str::<Vec<ScalingCurve>>(text) {
        if !curves.is_empty() {
            return Ok(scaling_figures(&curves));
        }
    }
    Err(
        "not a recognised results document (expected a non-empty JSON array of \
         experiment results or model-fault results)"
            .to_string(),
    )
}

/// Lower-cases and squeezes a label into a file-name fragment.
fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_end_matches('-').to_string()
}

/// The fault kinds of a plan, joined (`"Mislabelling"`,
/// `"Mislabelling+Removal"`, `"clean"` for the empty plan).
fn kinds_label(result: &ExperimentResult) -> String {
    let specs = result.config.fault_plan.specs();
    if specs.is_empty() {
        return "clean".to_string();
    }
    specs
        .iter()
        .map(|s| s.kind.name())
        .collect::<Vec<_>>()
        .join("+")
}

/// Total fault percentage of a plan (summed over specs, so combined
/// plans still order along one axis).
fn fault_percent(result: &ExperimentResult) -> f64 {
    result
        .config
        .fault_plan
        .specs()
        .iter()
        .map(|s| s.percent as f64)
        .sum()
}

/// `(fault percent, AD mean, AD half-width)` — one plotted point.
type AdPoint = (f64, f64, f64);

fn experiment_figures(results: &[ExperimentResult]) -> Vec<(String, String)> {
    // Group by (dataset, model, fault kinds); BTreeMap for stable output.
    let mut groups: BTreeMap<(String, String, String), Vec<&ExperimentResult>> = BTreeMap::new();
    for r in results {
        let key = (
            r.config.dataset.name().to_string(),
            r.config.model.name().to_string(),
            kinds_label(r),
        );
        groups.entry(key).or_default().push(r);
    }
    let mut figures = Vec::new();
    for ((dataset, model, kinds), members) in &groups {
        // Technique → (percent, ad, half_width), in first-seen order so
        // series colors track the input document.
        let mut by_technique: Vec<(String, Vec<AdPoint>)> = Vec::new();
        for r in members {
            let name = r.config.technique.full_name().to_string();
            let point = (fault_percent(r), r.ad.mean as f64, r.ad.half_width as f64);
            match by_technique.iter_mut().find(|(n, _)| *n == name) {
                Some((_, points)) => points.push(point),
                None => by_technique.push((name, vec![point])),
            }
        }
        let mut percents: Vec<f64> = members.iter().map(|r| fault_percent(r)).collect();
        percents.sort_by(f64::total_cmp);
        percents.dedup();

        let chart = if percents.len() > 1 {
            // Fig. 3 shape: AD vs fault rate, one curve per technique.
            LineChart {
                title: format!("AD vs fault rate — {dataset} / {model} / {kinds}"),
                x_label: format!("{kinds} (%)"),
                y_label: "Accuracy Delta".to_string(),
                x_ticks: Vec::new(),
                series: by_technique
                    .into_iter()
                    .map(|(label, mut points)| {
                        points.sort_by(|a, b| a.0.total_cmp(&b.0));
                        Series {
                            label,
                            err: points.iter().map(|p| p.2).collect(),
                            points: points.into_iter().map(|p| (p.0, p.1)).collect(),
                        }
                    })
                    .collect(),
            }
        } else {
            // Fig. 4 / motivating shape: one fault rate, techniques on a
            // categorical axis.
            let percent = percents.first().copied().unwrap_or(0.0);
            LineChart {
                title: format!("AD at {percent:.0}% {kinds} — {dataset} / {model}"),
                x_label: "technique".to_string(),
                y_label: "Accuracy Delta".to_string(),
                x_ticks: by_technique
                    .iter()
                    .enumerate()
                    .map(|(i, (name, _))| {
                        let abbrev = members
                            .iter()
                            .find(|r| r.config.technique.full_name() == *name)
                            .map(|r| r.config.technique.abbrev())
                            .unwrap_or(name);
                        (i as f64, abbrev.to_string())
                    })
                    .collect(),
                series: by_technique
                    .into_iter()
                    .enumerate()
                    .map(|(i, (label, points))| Series {
                        label,
                        err: points.iter().map(|p| p.2).collect(),
                        points: points.iter().map(|p| (i as f64, p.1)).collect(),
                    })
                    .collect(),
            }
        };
        figures.push((
            format!("ad_{}_{}_{}.svg", slug(dataset), slug(model), slug(kinds)),
            chart.render(),
        ));
    }
    figures
}

/// Splits a [`tdfm_inject::model::ModelFaultPlan`] label
/// (`"weights/all/bits 23-30/x4@seed9"`) into a short row label
/// (`"weights x4"`) and the inclusive bit range.
fn plan_parts(label: &str) -> (String, u32, u32) {
    let segments: Vec<&str> = label.split('/').collect();
    let site = segments.first().copied().unwrap_or("?");
    let mode = segments.last().copied().unwrap_or("?");
    let flips = mode.split('@').next().unwrap_or(mode);
    let (lo, hi) = segments
        .iter()
        .find_map(|s| s.strip_prefix("bits "))
        .and_then(|range| {
            let (lo, hi) = range.split_once('-')?;
            Some((lo.parse().ok()?, hi.parse().ok()?))
        })
        .unwrap_or((0, 31));
    (format!("{site} {flips}"), lo, hi)
}

fn model_fault_figures(results: &[ModelFaultResult]) -> Vec<(String, String)> {
    // Techniques and plans in first-appearance (sweep) order.
    let mut techniques: Vec<String> = Vec::new();
    let mut plans: Vec<String> = Vec::new();
    for r in results {
        let t = r.technique.full_name().to_string();
        if !techniques.contains(&t) {
            techniques.push(t);
        }
        if !plans.contains(&r.fault_label) {
            plans.push(r.fault_label.clone());
        }
    }
    let ad_of = |technique: &str, plan: &str| -> Option<f64> {
        results
            .iter()
            .find(|r| r.technique.full_name() == technique && r.fault_label == plan)
            .map(|r| r.ad.mean as f64)
    };

    // Figure 1: technique × plan AD heatmap.
    let technique_map = Heatmap {
        title: "Model-fault AD by technique and fault plan".to_string(),
        x_label: "fault plan (site × simultaneous flips)".to_string(),
        y_label: "technique".to_string(),
        col_labels: plans.iter().map(|p| plan_parts(p).0).collect(),
        row_labels: techniques.clone(),
        cells: techniques
            .iter()
            .map(|t| plans.iter().map(|p| ad_of(t, p)).collect())
            .collect(),
        value_scale: 100.0,
    };

    // Figure 2: fault-rate × bit-position AD map of the unprotected
    // baseline — each plan's AD painted across the bit range it flips.
    let baseline = techniques.first().cloned().unwrap_or_default();
    let bit_rows: Vec<&String> = plans.iter().collect();
    let bits_map = Heatmap {
        title: format!("{baseline} AD by fault plan and bit position"),
        x_label: "bit position (0 = mantissa LSB, 31 = sign)".to_string(),
        y_label: "fault plan".to_string(),
        col_labels: (0u32..32).map(|b| b.to_string()).collect(),
        row_labels: bit_rows.iter().map(|p| plan_parts(p).0).collect(),
        cells: bit_rows
            .iter()
            .map(|p| {
                let (_, lo, hi) = plan_parts(p);
                let ad = ad_of(&baseline, p);
                (0u32..32)
                    .map(|b| if (lo..=hi).contains(&b) { ad } else { None })
                    .collect()
            })
            .collect(),
        value_scale: 100.0,
    };

    vec![
        (
            "model_faults_techniques.svg".to_string(),
            technique_map.render(),
        ),
        ("model_faults_bits.svg".to_string(), bits_map.render()),
    ]
}

/// Drops the `"shard N: "` prefix of a [`tdfm_inject::ShardFaultPlan`]
/// label so heatmap columns read as fault rates (`"Mislabelling 50%"`,
/// `"clean"`).
fn shard_fault_rate(label: &str) -> String {
    label
        .split_once(": ")
        .map_or(label, |(_, rate)| rate)
        .to_string()
}

fn shard_fault_figures(results: &[ShardFaultResult]) -> Vec<(String, String)> {
    // Aggregators and fault labels in first-appearance (sweep) order.
    let mut aggregators: Vec<String> = Vec::new();
    let mut faults: Vec<String> = Vec::new();
    for r in results {
        if !aggregators.contains(&r.aggregator) {
            aggregators.push(r.aggregator.clone());
        }
        if !faults.contains(&r.fault_label) {
            faults.push(r.fault_label.clone());
        }
    }
    let heatmap = Heatmap {
        title: "Sharded-training AD by aggregator and shard fault rate".to_string(),
        x_label: "fault on the victim shard".to_string(),
        y_label: "aggregator".to_string(),
        col_labels: faults.iter().map(|f| shard_fault_rate(f)).collect(),
        row_labels: aggregators.clone(),
        cells: aggregators
            .iter()
            .map(|a| {
                faults
                    .iter()
                    .map(|f| {
                        results
                            .iter()
                            .find(|r| r.aggregator == *a && r.fault_label == *f)
                            .map(|r| r.ad.mean as f64)
                    })
                    .collect()
            })
            .collect(),
        value_scale: 100.0,
    };
    vec![("shard_faults_aggregators.svg".to_string(), heatmap.render())]
}

fn scaling_figures(curves: &[ScalingCurve]) -> Vec<(String, String)> {
    // Speedup relative to the single-thread cell, so curves of workloads
    // with very different absolute cost share one readable axis. The
    // dashed ideal-scaling diagonal comes from the measured thread counts.
    let simd = curves
        .iter()
        .map(|c| c.simd.as_str())
        .find(|s| !s.is_empty())
        .unwrap_or("unknown");
    let mut threads: Vec<u32> = curves
        .iter()
        .flat_map(|c| c.points.iter().map(|p| p.threads))
        .collect();
    threads.sort_unstable();
    threads.dedup();
    let mut series: Vec<Series> = curves
        .iter()
        .map(|c| Series {
            label: c.name.clone(),
            err: Vec::new(),
            points: c
                .speedups()
                .into_iter()
                .map(|(t, s)| (f64::from(t), s))
                .collect(),
        })
        .collect();
    series.push(Series {
        label: "ideal".to_string(),
        err: Vec::new(),
        points: threads
            .iter()
            .map(|&t| (f64::from(t), f64::from(t)))
            .collect(),
    });
    let chart = LineChart {
        title: format!("Training-step speedup vs worker threads ({simd})"),
        x_label: "worker threads (TDFM_THREADS)".to_string(),
        y_label: "speedup over 1 thread (min_seconds)".to_string(),
        x_ticks: threads
            .iter()
            .map(|&t| (f64::from(t), t.to_string()))
            .collect(),
        series,
    };
    vec![("scaling_threads.svg".to_string(), chart.render())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdfm_core::{ConfidenceInterval, ExperimentConfig, ExperimentResult, TechniqueKind};
    use tdfm_data::{DatasetKind, Scale};
    use tdfm_inject::{FaultKind, FaultPlan};
    use tdfm_nn::models::ModelKind;

    fn data_result(technique: TechniqueKind, percent: f32, ad: f32) -> ExperimentResult {
        let fault_plan = if percent == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::single(FaultKind::Mislabelling, percent)
        };
        ExperimentResult {
            fault_label: fault_plan.label(),
            config: ExperimentConfig {
                dataset: DatasetKind::Pneumonia,
                model: ModelKind::ConvNet,
                technique,
                fault_plan,
                scale: Scale::Tiny,
                repetitions: 1,
                seed: 42,
            },
            repetitions: Vec::new(),
            ad: ConfidenceInterval {
                mean: ad,
                half_width: 0.01,
            },
            golden_accuracy: ConfidenceInterval {
                mean: 0.9,
                half_width: 0.0,
            },
            faulty_accuracy: ConfidenceInterval {
                mean: 0.9 - ad,
                half_width: 0.0,
            },
        }
    }

    fn model_result(technique: TechniqueKind, fault_label: &str, ad: f32) -> ModelFaultResult {
        ModelFaultResult {
            dataset: DatasetKind::Pneumonia,
            model: ModelKind::ConvNet,
            technique,
            fault_label: fault_label.to_string(),
            scale: Scale::Tiny,
            seed: 42,
            repetitions: Vec::new(),
            clean_accuracy: ConfidenceInterval {
                mean: 0.9,
                half_width: 0.0,
            },
            faulty_accuracy: ConfidenceInterval {
                mean: 0.9 - ad,
                half_width: 0.0,
            },
            ad: ConfidenceInterval {
                mean: ad,
                half_width: 0.005,
            },
            wall_seconds: 0.5,
        }
    }

    #[test]
    fn multi_rate_sweep_renders_line_chart_per_group() {
        let mut results = Vec::new();
        for technique in [TechniqueKind::Baseline, TechniqueKind::Ensemble] {
            for (percent, ad) in [(10.0, 0.05), (30.0, 0.15), (50.0, 0.30)] {
                results.push(data_result(technique, percent, ad));
            }
        }
        let text = tdfm_json::to_string(&results);
        let figures = render_figures(&text).unwrap();
        assert_eq!(figures.len(), 1);
        let (name, svg) = &figures[0];
        assert_eq!(name, "ad_pneumonia_convnet_mislabelling.svg");
        assert!(svg.contains("AD vs fault rate"));
        assert!(svg.contains("Ensemble"));
    }

    #[test]
    fn single_rate_results_render_categorical_scatter() {
        let results = vec![
            data_result(TechniqueKind::Baseline, 10.0, 0.12),
            data_result(TechniqueKind::LabelSmoothing, 10.0, 0.08),
            data_result(TechniqueKind::Ensemble, 10.0, 0.03),
        ];
        let text = tdfm_json::to_string(&results);
        let figures = render_figures(&text).unwrap();
        assert_eq!(figures.len(), 1);
        let svg = &figures[0].1;
        // Categorical axis: technique abbreviations as tick labels.
        for abbrev in ["Base", "LS", "Ens"] {
            assert!(svg.contains(abbrev), "missing tick {abbrev}");
        }
        assert!(svg.contains("AD at 10%"));
    }

    #[test]
    fn model_fault_results_render_both_heatmaps() {
        let results = vec![
            model_result(
                TechniqueKind::Baseline,
                "weights/all/bits 23-30/x4@seed9",
                0.2,
            ),
            model_result(
                TechniqueKind::Baseline,
                "activations/all/bits 0-31/x1@seed9",
                0.1,
            ),
            model_result(
                TechniqueKind::Ensemble,
                "weights/all/bits 23-30/x4@seed9",
                0.05,
            ),
            model_result(
                TechniqueKind::Ensemble,
                "activations/all/bits 0-31/x1@seed9",
                0.02,
            ),
        ];
        let text = tdfm_json::to_string(&results);
        let figures = render_figures(&text).unwrap();
        let names: Vec<&str> = figures.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            ["model_faults_techniques.svg", "model_faults_bits.svg"]
        );
        let techniques = &figures[0].1;
        assert!(techniques.contains("weights x4"));
        assert!(techniques.contains("activations x1"));
        assert!(techniques.contains("Ensemble"));
        // The bits map names the baseline and spans all 32 bit columns.
        let bits = &figures[1].1;
        assert!(bits.contains("Baseline AD by fault plan and bit position"));
        assert!(bits.contains(">31<"));
    }

    fn shard_result(aggregator: &str, fault_label: &str, ad: f32) -> ShardFaultResult {
        ShardFaultResult {
            dataset: DatasetKind::Cifar10,
            model: ModelKind::ConvNet,
            aggregator: aggregator.to_string(),
            workers: 8,
            fault_label: fault_label.to_string(),
            scale: Scale::Tiny,
            seed: 8,
            repetitions: Vec::new(),
            clean_accuracy: ConfidenceInterval {
                mean: 0.8,
                half_width: 0.0,
            },
            faulty_accuracy: ConfidenceInterval {
                mean: 0.8 - ad,
                half_width: 0.0,
            },
            ad: ConfidenceInterval {
                mean: ad,
                half_width: 0.01,
            },
            localization_hits: 1,
            wall_seconds: 0.5,
        }
    }

    #[test]
    fn shard_fault_results_render_the_aggregator_heatmap() {
        let results = vec![
            shard_result("Mean", "clean", 0.0),
            shard_result("Mean", "shard 1: Mislabelling 50%", 0.25),
            shard_result("TrimmedMean(f=1)", "clean", 0.0),
            shard_result("TrimmedMean(f=1)", "shard 1: Mislabelling 50%", 0.02),
        ];
        let text = tdfm_json::to_string(&results);
        let figures = render_figures(&text).unwrap();
        assert_eq!(figures.len(), 1);
        let (name, svg) = &figures[0];
        assert_eq!(name, "shard_faults_aggregators.svg");
        assert!(svg.contains("aggregator"));
        assert!(svg.contains("Mean"));
        // Column labels are rates, with the shard prefix stripped.
        assert!(svg.contains("Mislabelling 50%"));
        assert!(!svg.contains("shard 1:"));
        // Determinism, like the other renderers.
        assert_eq!(render_figures(&text).unwrap(), figures);
    }

    #[test]
    fn shard_fault_rate_strips_the_shard_prefix() {
        assert_eq!(
            shard_fault_rate("shard 1: Mislabelling 50%"),
            "Mislabelling 50%"
        );
        assert_eq!(shard_fault_rate("clean"), "clean");
    }

    #[test]
    fn plan_labels_parse_into_row_labels_and_bit_ranges() {
        assert_eq!(
            plan_parts("weights/all/bits 23-30/x4@seed9"),
            ("weights x4".to_string(), 23, 30)
        );
        assert_eq!(
            plan_parts("activations/layers[0, 2]/bits 0-31/x16@seed56"),
            ("activations x16".to_string(), 0, 31)
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let results = vec![
            model_result(
                TechniqueKind::Baseline,
                "weights/all/bits 23-30/x4@seed9",
                0.2,
            ),
            model_result(
                TechniqueKind::Ensemble,
                "weights/all/bits 23-30/x4@seed9",
                0.05,
            ),
        ];
        let text = tdfm_json::to_string(&results);
        assert_eq!(
            render_figures(&text).unwrap(),
            render_figures(&text).unwrap()
        );
    }

    #[test]
    fn scaling_curves_render_a_speedup_chart() {
        use crate::harness::{ScalingCurve, ScalingPoint};
        let point = |threads, min_seconds| ScalingPoint {
            threads,
            mean_seconds: min_seconds,
            min_seconds,
        };
        let curves = vec![
            ScalingCurve {
                name: "ConvNet".to_string(),
                simd: "avx2".to_string(),
                points: vec![point(1, 0.040), point(2, 0.024), point(4, 0.016)],
            },
            ScalingCurve {
                name: "ResNet18".to_string(),
                simd: "avx2".to_string(),
                points: vec![point(1, 0.200), point(2, 0.110), point(4, 0.070)],
            },
        ];
        let text = tdfm_json::to_string(&curves);
        let figures = render_figures(&text).unwrap();
        assert_eq!(figures.len(), 1);
        let (name, svg) = &figures[0];
        assert_eq!(name, "scaling_threads.svg");
        assert!(svg.contains("speedup vs worker threads (avx2)"));
        for label in ["ConvNet", "ResNet18", "ideal"] {
            assert!(svg.contains(label), "missing series {label}");
        }
        assert_eq!(render_figures(&text).unwrap(), figures);
    }

    #[test]
    fn unrecognised_documents_are_rejected() {
        assert!(render_figures("[]").is_err());
        assert!(render_figures("{\"not\": \"an array\"}").is_err());
        assert!(render_figures("definitely not json").is_err());
    }
}
