//! `tdfm` — command-line front end to the reproduction.
//!
//! ```text
//! tdfm survey                         print Table I and the representatives
//! tdfm datasets [--scale S]           print the dataset registry (Table II)
//! tdfm models [--scale S]             print the architecture registry (Table III)
//! tdfm run [OPTIONS]                  run one experiment cell and print AD
//! tdfm detect [OPTIONS]               run the label-noise detector
//! tdfm sweep --config FILE            run a JSON list of cells (+ manifest)
//! tdfm report FILE...                 summarise manifests / JSONL traces
//! tdfm report --profile TRACE...      span-tree profile of a JSONL trace
//! tdfm figures FILE [--out DIR]       render result JSONs to SVG figures
//! tdfm diff-results A B               compare result JSONs, timings ignored
//! tdfm lint [--json] [--sarif F]      static analysis (kernel invariants)
//! tdfm help                           this text
//! ```
//!
//! Observability: `TDFM_LOG=error|warn|info|debug|trace` prints structured
//! events to stderr; `TDFM_TRACE=<path>` writes them as JSONL. Results
//! stay byte-identical either way.
//!
//! `run`/`detect` options:
//!
//! ```text
//! --dataset  cifar10|gtsrb|pneumonia      (default cifar10)
//! --model    convnet|deconvnet|vgg11|vgg16|resnet18|resnet50|mobilenet
//!                                          (default convnet)
//! --technique base|ls|lc|rl|kd|ens         (default base; run only)
//! --fault    mislabelling|repetition|removal|pairflip (default mislabelling)
//! --percent  0..100                        (default 30)
//! --scale    tiny|smoke|default|full       (default smoke)
//! --reps     N                             (default: scale preset)
//! --seed     N                             (default 0)
//! --json                                   machine-readable output (run only)
//! ```

use tdfm::core::detect::NoiseDetector;
use tdfm::core::technique::TrainContext;
use tdfm::core::{ExperimentConfig, Runner, TechniqueKind};
use tdfm::data::{DatasetKind, Scale};
use tdfm::inject::{FaultKind, FaultPlan, Injector};
use tdfm::nn::models::{ModelConfig, ModelKind};
use tdfm::survey::{catalog, render_table_i, select_representatives};

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Survey,
    Datasets {
        scale: Scale,
    },
    Models {
        scale: Scale,
    },
    Run(RunArgs),
    Detect(RunArgs),
    Sweep {
        config: String,
        output: Option<String>,
    },
    Report {
        paths: Vec<String>,
        /// Reconstruct the span tree of a JSONL trace instead of the
        /// manifest summary.
        profile: bool,
        /// Emit flamegraph-compatible collapsed stacks (implies profile).
        collapsed: bool,
    },
    Figures {
        input: String,
        out: String,
    },
    DiffResults {
        recorded: String,
        fresh: String,
    },
    Lint(LintArgs),
    Help,
}

#[derive(Debug, Clone, PartialEq, Default)]
struct LintArgs {
    /// Emit the machine-readable JSON report instead of text.
    json: bool,
    /// Alternative config file (default: `<root>/lint.toml` if present).
    config: Option<String>,
    /// Workspace root to lint (default: current directory).
    root: Option<String>,
    /// Also write a SARIF 2.1.0 document to this path (for CI upload).
    sarif: Option<String>,
    /// Write a small run manifest (files checked, findings, wall time)
    /// to this path.
    manifest: Option<String>,
    /// Fail (exit 1) if the lint run takes longer than this many seconds.
    time_budget: Option<u64>,
}

#[derive(Debug, Clone, PartialEq)]
struct RunArgs {
    dataset: DatasetKind,
    model: ModelKind,
    technique: TechniqueKind,
    fault: FaultKind,
    percent: f32,
    scale: Scale,
    reps: Option<usize>,
    seed: u64,
    json: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            dataset: DatasetKind::Cifar10,
            model: ModelKind::ConvNet,
            technique: TechniqueKind::Baseline,
            fault: FaultKind::Mislabelling,
            percent: 30.0,
            scale: Scale::Smoke,
            reps: None,
            seed: 0,
            json: false,
        }
    }
}

fn parse_dataset(s: &str) -> Result<DatasetKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "cifar10" | "cifar-10" => Ok(DatasetKind::Cifar10),
        "gtsrb" => Ok(DatasetKind::Gtsrb),
        "pneumonia" => Ok(DatasetKind::Pneumonia),
        other => Err(format!("unknown dataset '{other}'")),
    }
}

fn parse_model(s: &str) -> Result<ModelKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "convnet" => Ok(ModelKind::ConvNet),
        "deconvnet" => Ok(ModelKind::DeconvNet),
        "vgg11" => Ok(ModelKind::Vgg11),
        "vgg16" => Ok(ModelKind::Vgg16),
        "resnet18" => Ok(ModelKind::ResNet18),
        "resnet50" => Ok(ModelKind::ResNet50),
        "mobilenet" => Ok(ModelKind::MobileNet),
        other => Err(format!("unknown model '{other}'")),
    }
}

fn parse_technique(s: &str) -> Result<TechniqueKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "base" | "baseline" => Ok(TechniqueKind::Baseline),
        "ls" => Ok(TechniqueKind::LabelSmoothing),
        "lc" => Ok(TechniqueKind::LabelCorrection),
        "rl" => Ok(TechniqueKind::RobustLoss),
        "kd" => Ok(TechniqueKind::KnowledgeDistillation),
        "ens" | "ensemble" => Ok(TechniqueKind::Ensemble),
        other => Err(format!("unknown technique '{other}'")),
    }
}

fn parse_fault(s: &str) -> Result<FaultKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "mislabelling" | "mislabeling" | "mislabel" => Ok(FaultKind::Mislabelling),
        "repetition" | "repeat" => Ok(FaultKind::Repetition),
        "removal" | "remove" => Ok(FaultKind::Removal),
        "pairflip" | "pair-flip" => Ok(FaultKind::PairFlipMislabelling),
        other => Err(format!("unknown fault '{other}'")),
    }
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s.to_ascii_lowercase().as_str() {
        "tiny" => Ok(Scale::Tiny),
        "smoke" => Ok(Scale::Smoke),
        "default" => Ok(Scale::Default),
        "full" => Ok(Scale::Full),
        other => Err(format!("unknown scale '{other}'")),
    }
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut out = RunArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--json" {
            out.json = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag '{flag}' requires a value"))?;
        match flag.as_str() {
            "--dataset" => out.dataset = parse_dataset(value)?,
            "--model" => out.model = parse_model(value)?,
            "--technique" => out.technique = parse_technique(value)?,
            "--fault" => out.fault = parse_fault(value)?,
            "--percent" => {
                out.percent = value
                    .parse::<f32>()
                    .map_err(|_| format!("bad percent '{value}'"))?;
                if !(0.0..=100.0).contains(&out.percent) {
                    return Err(format!("percent {value} out of [0, 100]"));
                }
            }
            "--scale" => out.scale = parse_scale(value)?,
            "--reps" => {
                out.reps = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("bad reps '{value}'"))?,
                )
            }
            "--seed" => {
                out.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed '{value}'"))?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(out)
}

fn parse_command(args: &[String]) -> Result<Command, String> {
    let Some(verb) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match verb.as_str() {
        "survey" => Ok(Command::Survey),
        "datasets" => Ok(Command::Datasets {
            scale: parse_run_args(rest)?.scale,
        }),
        "models" => Ok(Command::Models {
            scale: parse_run_args(rest)?.scale,
        }),
        "run" => Ok(Command::Run(parse_run_args(rest)?)),
        "detect" => Ok(Command::Detect(parse_run_args(rest)?)),
        "sweep" => {
            let mut config = None;
            let mut output = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag '{flag}' requires a value"))?;
                match flag.as_str() {
                    "--config" => config = Some(value.clone()),
                    "--output" => output = Some(value.clone()),
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            let config = config.ok_or_else(|| "sweep requires --config FILE".to_string())?;
            Ok(Command::Sweep { config, output })
        }
        "report" => {
            let mut profile = false;
            let mut collapsed = false;
            let mut paths = Vec::new();
            for arg in rest {
                match arg.as_str() {
                    "--profile" => profile = true,
                    "--collapsed" => collapsed = true,
                    other if other.starts_with("--") => {
                        return Err(format!("unknown flag '{other}'"));
                    }
                    _ => paths.push(arg.clone()),
                }
            }
            if paths.is_empty() {
                return Err("report requires at least one manifest or trace file".to_string());
            }
            Ok(Command::Report {
                paths,
                profile: profile || collapsed,
                collapsed,
            })
        }
        "figures" => {
            let mut input = None;
            let mut out = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--out" => {
                        let value = it
                            .next()
                            .ok_or_else(|| "flag '--out' requires a value".to_string())?;
                        out = Some(value.clone());
                    }
                    other if other.starts_with("--") => {
                        return Err(format!("unknown flag '{other}'"));
                    }
                    _ if input.is_none() => input = Some(arg.clone()),
                    other => return Err(format!("unexpected argument '{other}'")),
                }
            }
            let input = input.ok_or_else(|| "figures requires a results file".to_string())?;
            Ok(Command::Figures {
                input,
                out: out.unwrap_or_else(|| "results/figures".to_string()),
            })
        }
        "diff-results" => match rest {
            [recorded, fresh] => Ok(Command::DiffResults {
                recorded: recorded.clone(),
                fresh: fresh.clone(),
            }),
            _ => Err("diff-results requires exactly two result files".to_string()),
        },
        "lint" => {
            let mut lint = LintArgs::default();
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                if flag == "--json" {
                    lint.json = true;
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag '{flag}' requires a value"))?;
                match flag.as_str() {
                    "--config" => lint.config = Some(value.clone()),
                    "--root" => lint.root = Some(value.clone()),
                    "--sarif" => lint.sarif = Some(value.clone()),
                    "--manifest" => lint.manifest = Some(value.clone()),
                    "--time-budget" => {
                        lint.time_budget = Some(value.parse().map_err(|_| {
                            format!("--time-budget expects whole seconds, got '{value}'")
                        })?)
                    }
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            Ok(Command::Lint(lint))
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command '{other}' (try 'tdfm help')")),
    }
}

fn cmd_survey() {
    let cat = catalog();
    print!("{}", render_table_i(&cat));
    println!("\nRepresentatives:");
    for t in select_representatives(&cat) {
        println!("  {:<24} -> {} {}", t.approach.name(), t.name, t.reference);
    }
}

fn cmd_datasets(scale: Scale) {
    println!(
        "{:<12}{:>8}{:>13}{:>12}  task",
        "Name", "classes", "synth train", "synth test"
    );
    for kind in DatasetKind::ALL {
        let info = kind.info();
        println!(
            "{:<12}{:>8}{:>13}{:>12}  {}",
            info.name,
            info.classes,
            kind.train_size(scale),
            kind.test_size(scale),
            info.task
        );
    }
}

fn cmd_models(scale: Scale) {
    println!(
        "{:<12}{:<10}{:<32}{:>10}",
        "Name", "Depth", "Summary", "Params"
    );
    let cfg = ModelConfig {
        in_shape: (3, scale.image_side(), scale.image_side()),
        classes: 10,
        width: scale.model_width(),
        seed: 0,
    };
    for kind in ModelKind::ALL {
        let info = kind.info();
        let mut net = kind.build(&cfg);
        println!(
            "{:<12}{:<10}{:<32}{:>10}",
            info.name,
            info.depth.to_string(),
            info.summary,
            net.param_count()
        );
    }
}

fn cmd_run(args: RunArgs) {
    let runner = Runner::new();
    let result = runner.run(&ExperimentConfig {
        dataset: args.dataset,
        model: args.model,
        technique: args.technique,
        fault_plan: FaultPlan::single(args.fault, args.percent),
        scale: args.scale,
        repetitions: args.reps.unwrap_or_else(|| args.scale.repetitions()),
        seed: args.seed,
    });
    if args.json {
        println!("{}", result.to_json());
        return;
    }
    println!(
        "{} / {} / {} / {}",
        args.dataset,
        args.model.name(),
        args.technique.full_name(),
        result.fault_label
    );
    println!(
        "  golden accuracy : {:.1}%",
        100.0 * result.golden_accuracy.mean
    );
    println!(
        "  faulty accuracy : {:.1}%",
        100.0 * result.faulty_accuracy.mean
    );
    println!(
        "  accuracy delta  : {:.1}% ± {:.1}",
        100.0 * result.ad.mean,
        100.0 * result.ad.half_width
    );
}

fn cmd_detect(args: RunArgs) {
    let data = args.dataset.generate(args.scale, args.seed);
    let plan = FaultPlan::single(args.fault, args.percent);
    let (faulty, report) = Injector::new(args.seed).apply(&data.train, &plan);
    let mut ctx = TrainContext::new(args.scale, args.seed);
    ctx.tune_for(faulty.len());
    let detection = NoiseDetector::new(3, args.model).detect(&faulty, &ctx);
    let quality = detection.evaluate(&report.mislabelled_indices);
    println!(
        "{} with {}: {} of {} samples flagged",
        args.dataset,
        plan.label(),
        detection.suspects.len(),
        faulty.len()
    );
    println!(
        "  precision {:.1}%  recall {:.1}%  F1 {:.1}%",
        100.0 * quality.precision,
        100.0 * quality.recall,
        100.0 * quality.f1
    );
}

fn cmd_sweep(config_path: &str, output: Option<&str>) -> Result<(), String> {
    let text = std::fs::read_to_string(config_path)
        .map_err(|e| format!("cannot read {config_path}: {e}"))?;
    let cells: Vec<ExperimentConfig> =
        tdfm::json::from_str(&text).map_err(|e| format!("bad sweep config: {e}"))?;
    if cells.is_empty() {
        return Err("sweep config contains no cells".to_string());
    }
    // Fan the whole sweep across the TDFM_THREADS budget; results come back
    // in cell order, so the report below matches the config file.
    let runner = Runner::new();
    let results = runner.run_grid(&cells);
    let mut payload = Vec::with_capacity(cells.len());
    for (i, (cell, result)) in cells.iter().zip(&results).enumerate() {
        println!(
            "[{}/{}] {} / {} / {} / {}: AD {:.1}% ± {:.1}",
            i + 1,
            cells.len(),
            cell.dataset,
            cell.model.name(),
            cell.technique.full_name(),
            result.fault_label,
            100.0 * result.ad.mean,
            100.0 * result.ad.half_width,
        );
        payload.push(result.to_json());
    }
    if let Some(path) = output {
        let doc = format!("[\n{}\n]", payload.join(",\n"));
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    // The manifest lands next to the results (`out.json` ->
    // `out.manifest.json`); without --output it is `sweep.manifest.json`.
    let stem = output
        .map(|p| p.strip_suffix(".json").unwrap_or(p).to_string())
        .unwrap_or_else(|| "sweep".to_string());
    let manifest_path = format!("{stem}.manifest.json");
    runner
        .manifest(&stem, &results)
        .write(&manifest_path)
        .map_err(|e| format!("cannot write {manifest_path}: {e}"))?;
    println!("wrote {manifest_path}");
    Ok(())
}

fn cmd_report(paths: &[String], profile: bool, collapsed: bool) -> Result<(), String> {
    if !profile {
        print!("{}", tdfm::obs::render_report(paths)?);
        return Ok(());
    }
    for path in paths {
        let prof = tdfm::obs::Profile::from_path(path)?;
        if collapsed {
            print!("{}", prof.render_collapsed());
        } else {
            print!("{}", prof.render_table(std::path::Path::new(path)));
        }
    }
    Ok(())
}

fn cmd_figures(input: &str, out: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let figures =
        tdfm::bench::figures::render_figures(&text).map_err(|e| format!("{input}: {e}"))?;
    let dir = std::path::Path::new(out);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {out}: {e}"))?;
    for (name, svg) in &figures {
        let path = dir.join(name);
        std::fs::write(&path, svg).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

/// Zeroes every timing field (`train_seconds`, `infer_seconds`,
/// `wall_seconds`) anywhere in a result document — wall clocks are the
/// only part of a result that is not a deterministic function of its
/// configuration, so this is exactly what must be masked before two runs
/// can be compared byte for byte. Schema-agnostic on purpose: it works on
/// data-fault results, model-fault results and manifests alike.
fn normalize_timings_value(v: &mut tdfm::json::Value) {
    use tdfm::json::{Number, Value};
    match v {
        Value::Array(items) => items.iter_mut().for_each(normalize_timings_value),
        Value::Object(fields) => {
            for (key, val) in fields.iter_mut() {
                match key.as_str() {
                    "train_seconds" | "infer_seconds" | "wall_seconds" => {
                        *val = Value::Num(Number::F64(0.0));
                    }
                    _ => normalize_timings_value(val),
                }
            }
        }
        _ => {}
    }
}

fn cmd_diff_results(recorded: &str, fresh: &str) -> Result<(), String> {
    let load = |path: &str| -> Result<String, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut value = tdfm::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        normalize_timings_value(&mut value);
        Ok(tdfm::json::to_string_pretty(&value))
    };
    let a = load(recorded)?;
    let b = load(fresh)?;
    if a == b {
        println!("results match (timings ignored): {recorded} == {fresh}");
        return Ok(());
    }
    let first_diff = a
        .lines()
        .zip(b.lines())
        .position(|(la, lb)| la != lb)
        .map(|i| i + 1);
    match first_diff {
        Some(line) => {
            let la = a.lines().nth(line - 1).unwrap_or("");
            let lb = b.lines().nth(line - 1).unwrap_or("");
            println!("results drifted at normalised line {line}:");
            println!("  {recorded}: {}", la.trim());
            println!("  {fresh}: {}", lb.trim());
        }
        None => println!(
            "results drifted: documents share a prefix but differ in length \
             ({} vs {} lines)",
            a.lines().count(),
            b.lines().count()
        ),
    }
    // Drift already reported on stdout; exit 1 distinguishes it from
    // usage/IO errors (exit 2), mirroring `tdfm lint`.
    std::process::exit(1);
}

fn cmd_lint(args: &LintArgs) -> Result<(), String> {
    let root = std::path::PathBuf::from(args.root.as_deref().unwrap_or("."));
    // tdfm-lint: allow(nondeterministic-time, lint wall time is operator telemetry for the CI time budget; it is recorded in the lint manifest, never in a golden)
    let started = std::time::Instant::now();
    let report = tdfm::lint::run(&root, args.config.as_deref().map(std::path::Path::new))?;
    let wall_seconds = started.elapsed().as_secs_f64();
    if args.json {
        println!(
            "{}",
            tdfm::lint::report_json(&report.diagnostics, report.files_checked)
        );
    } else {
        print!(
            "{}",
            tdfm::lint::report_text(&report.diagnostics, report.files_checked)
        );
    }
    if let Some(path) = &args.sarif {
        std::fs::write(path, tdfm::lint::report_sarif(&report.diagnostics))
            .map_err(|e| format!("cannot write SARIF to {path}: {e}"))?;
    }
    if let Some(path) = &args.manifest {
        let manifest = lint_manifest(&report, wall_seconds, args.time_budget);
        std::fs::write(path, manifest)
            .map_err(|e| format!("cannot write lint manifest to {path}: {e}"))?;
    }
    let over_budget = args.time_budget.is_some_and(|b| wall_seconds > b as f64);
    if over_budget {
        eprintln!(
            "tdfm-lint: run took {wall_seconds:.2}s, over the {}s budget",
            args.time_budget.unwrap_or(0)
        );
    }
    if report.diagnostics.is_empty() && !over_budget {
        Ok(())
    } else {
        // Findings/budget already reported; exit 1 distinguishes them from
        // usage/IO errors (exit 2).
        std::process::exit(1);
    }
}

/// A small JSON manifest of one lint run, mirroring the shape of the
/// training run manifests: what was checked, what was found, how long it
/// took. CI commits this next to the SARIF artifact.
fn lint_manifest(
    report: &tdfm::lint::LintReport,
    wall_seconds: f64,
    time_budget: Option<u64>,
) -> String {
    use tdfm::json::{Number, Value};
    let budget = match time_budget {
        Some(b) => Value::Num(Number::UInt(b)),
        None => Value::Null,
    };
    let doc = Value::Object(vec![
        ("tool".to_string(), Value::Str("tdfm-lint".to_string())),
        (
            "files_checked".to_string(),
            Value::Num(Number::UInt(report.files_checked as u64)),
        ),
        (
            "findings".to_string(),
            Value::Num(Number::UInt(report.diagnostics.len() as u64)),
        ),
        (
            "wall_seconds".to_string(),
            Value::Num(Number::F64(wall_seconds)),
        ),
        ("time_budget_seconds".to_string(), budget),
    ]);
    tdfm::json::to_string_pretty(&doc)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match parse_command(&args) {
        Ok(Command::Survey) => {
            cmd_survey();
            Ok(())
        }
        Ok(Command::Datasets { scale }) => {
            cmd_datasets(scale);
            Ok(())
        }
        Ok(Command::Models { scale }) => {
            cmd_models(scale);
            Ok(())
        }
        Ok(Command::Run(run)) => {
            cmd_run(run);
            Ok(())
        }
        Ok(Command::Detect(run)) => {
            cmd_detect(run);
            Ok(())
        }
        Ok(Command::Sweep { config, output }) => cmd_sweep(&config, output.as_deref()),
        Ok(Command::Report {
            paths,
            profile,
            collapsed,
        }) => cmd_report(&paths, profile, collapsed),
        Ok(Command::Figures { input, out }) => cmd_figures(&input, &out),
        Ok(Command::DiffResults { recorded, fresh }) => cmd_diff_results(&recorded, &fresh),
        Ok(Command::Lint(lint)) => cmd_lint(&lint),
        Ok(Command::Help) => {
            print!("{}", HELP);
            Ok(())
        }
        Err(e) => Err(e),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

const HELP: &str = "tdfm - reproduction of 'The Fault in Our Data Stars' (DSN 2022)

USAGE:
  tdfm survey                      print Table I and the representatives
  tdfm datasets [--scale S]        dataset registry (Table II)
  tdfm models [--scale S]          architecture registry (Table III)
  tdfm run [OPTIONS]               run one experiment cell, print AD
  tdfm detect [OPTIONS]            run the label-noise detector
  tdfm sweep --config FILE [--output FILE]
                                   run a JSON list of experiment cells
                                   (writes <output>.manifest.json too)
  tdfm report FILE...              summarise run manifests / JSONL traces
  tdfm report --profile TRACE...   span-tree profile of a JSONL trace
                                   (self/total time per span path;
                                   --collapsed emits flamegraph-style
                                   collapsed stacks instead)
  tdfm figures FILE [--out DIR]    render a committed results JSON to
                                   deterministic SVG figures
                                   (default DIR: results/figures)
  tdfm diff-results A B            compare two result JSONs with timing
                                   fields normalised; exit 1 on drift
                                   (the CI gate for committed results)
  tdfm lint [--json] [--config FILE] [--root DIR]
            [--sarif FILE] [--manifest FILE] [--time-budget SECS]
                                   static analysis of the workspace sources
                                   (kernel/determinism invariants; exit 1
                                   on any finding or blown time budget;
                                   --sarif writes a SARIF 2.1.0 report,
                                   --manifest records files/findings/wall
                                   time for the CI lint stage)
  tdfm help                        this text

OPTIONS (run/detect):
  --dataset cifar10|gtsrb|pneumonia      --model convnet|...|mobilenet
  --technique base|ls|lc|rl|kd|ens       --fault mislabelling|repetition|removal|pairflip
  --percent 0..100                       --scale tiny|smoke|default|full
  --reps N  --seed N  --json

ENVIRONMENT:
  TDFM_LOG=error|warn|info|debug|trace   structured events on stderr
  TDFM_TRACE=path.jsonl                  JSONL trace of every event
  TDFM_THREADS=N  TDFM_SCALE=tiny|smoke|default|full  TDFM_RESULTS=dir
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_command(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn run_with_defaults() {
        let cmd = parse_command(&argv("run")).unwrap();
        assert_eq!(cmd, Command::Run(RunArgs::default()));
    }

    #[test]
    fn run_with_everything() {
        let cmd = parse_command(&argv(
            "run --dataset gtsrb --model resnet50 --technique ens --fault removal \
             --percent 50 --scale tiny --reps 2 --seed 9 --json",
        ))
        .unwrap();
        match cmd {
            Command::Run(args) => {
                assert_eq!(args.dataset, DatasetKind::Gtsrb);
                assert_eq!(args.model, ModelKind::ResNet50);
                assert_eq!(args.technique, TechniqueKind::Ensemble);
                assert_eq!(args.fault, FaultKind::Removal);
                assert_eq!(args.percent, 50.0);
                assert_eq!(args.scale, Scale::Tiny);
                assert_eq!(args.reps, Some(2));
                assert_eq!(args.seed, 9);
                assert!(args.json);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(parse_command(&argv("run --dataset mnist")).is_err());
        assert!(parse_command(&argv("run --percent 150")).is_err());
        assert!(parse_command(&argv("run --percent")).is_err());
        assert!(parse_command(&argv("frobnicate")).is_err());
        assert!(parse_command(&argv("run --bogus 1")).is_err());
    }

    #[test]
    fn fault_aliases() {
        assert_eq!(parse_fault("mislabel").unwrap(), FaultKind::Mislabelling);
        assert_eq!(
            parse_fault("pair-flip").unwrap(),
            FaultKind::PairFlipMislabelling
        );
    }

    #[test]
    fn detect_parses() {
        let cmd = parse_command(&argv("detect --dataset cifar10 --percent 30")).unwrap();
        assert!(matches!(cmd, Command::Detect(_)));
    }

    #[test]
    fn sweep_requires_config() {
        assert!(parse_command(&argv("sweep")).is_err());
        let cmd = parse_command(&argv("sweep --config cells.json --output out.json")).unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                config: "cells.json".to_string(),
                output: Some("out.json".to_string())
            }
        );
    }

    #[test]
    fn report_requires_paths() {
        assert!(parse_command(&argv("report")).is_err());
        assert!(parse_command(&argv("report --profile")).is_err());
        let cmd = parse_command(&argv("report results/table4.manifest.json trace.jsonl")).unwrap();
        assert_eq!(
            cmd,
            Command::Report {
                paths: vec![
                    "results/table4.manifest.json".to_string(),
                    "trace.jsonl".to_string()
                ],
                profile: false,
                collapsed: false,
            }
        );
    }

    #[test]
    fn report_profile_flags() {
        let cmd = parse_command(&argv("report --profile trace.jsonl")).unwrap();
        assert_eq!(
            cmd,
            Command::Report {
                paths: vec!["trace.jsonl".to_string()],
                profile: true,
                collapsed: false,
            }
        );
        // --collapsed implies profile.
        let cmd = parse_command(&argv("report trace.jsonl --collapsed")).unwrap();
        assert_eq!(
            cmd,
            Command::Report {
                paths: vec!["trace.jsonl".to_string()],
                profile: true,
                collapsed: true,
            }
        );
        assert!(parse_command(&argv("report --flamegraph trace.jsonl")).is_err());
    }

    #[test]
    fn figures_parses_input_and_out() {
        assert!(parse_command(&argv("figures")).is_err());
        assert!(parse_command(&argv("figures a.json b.json")).is_err());
        assert!(parse_command(&argv("figures a.json --out")).is_err());
        assert_eq!(
            parse_command(&argv("figures results/model_faults.json")).unwrap(),
            Command::Figures {
                input: "results/model_faults.json".to_string(),
                out: "results/figures".to_string(),
            }
        );
        assert_eq!(
            parse_command(&argv("figures a.json --out /tmp/figs")).unwrap(),
            Command::Figures {
                input: "a.json".to_string(),
                out: "/tmp/figs".to_string(),
            }
        );
    }

    #[test]
    fn diff_results_requires_two_paths() {
        assert!(parse_command(&argv("diff-results")).is_err());
        assert!(parse_command(&argv("diff-results a.json")).is_err());
        assert!(parse_command(&argv("diff-results a.json b.json c.json")).is_err());
        assert_eq!(
            parse_command(&argv("diff-results a.json b.json")).unwrap(),
            Command::DiffResults {
                recorded: "a.json".to_string(),
                fresh: "b.json".to_string(),
            }
        );
    }

    #[test]
    fn timing_normalisation_masks_only_wall_clocks() {
        let mut v = tdfm::json::parse(
            r#"[{"ad": 0.5, "train_seconds": 1.25,
                 "repetitions": [{"infer_seconds": 3.5, "wall_seconds": 9.0}]}]"#,
        )
        .unwrap();
        normalize_timings_value(&mut v);
        let text = tdfm::json::to_string_pretty(&v);
        assert!(!text.contains("1.25"), "{text}");
        assert!(!text.contains("3.5"), "{text}");
        assert!(!text.contains("9.0"), "{text}");
        assert!(text.contains("0.5"), "AD must survive: {text}");
    }

    #[test]
    fn lint_parses_flags() {
        assert_eq!(
            parse_command(&argv("lint")).unwrap(),
            Command::Lint(LintArgs::default())
        );
        assert_eq!(
            parse_command(&argv(
                "lint --json --config other.toml --root /tmp/repo \
                 --sarif lint.sarif --manifest lint-manifest.json --time-budget 10"
            ))
            .unwrap(),
            Command::Lint(LintArgs {
                json: true,
                config: Some("other.toml".to_string()),
                root: Some("/tmp/repo".to_string()),
                sarif: Some("lint.sarif".to_string()),
                manifest: Some("lint-manifest.json".to_string()),
                time_budget: Some(10),
            })
        );
        assert!(parse_command(&argv("lint --config")).is_err());
        assert!(parse_command(&argv("lint --bogus x")).is_err());
        assert!(parse_command(&argv("lint --time-budget fast")).is_err());
    }

    #[test]
    fn sweep_config_format_parses() {
        // The sweep file is a JSON array of ExperimentConfig values.
        let json = r#"[{
            "dataset": "Cifar10",
            "model": "ConvNet",
            "technique": "LabelSmoothing",
            "fault_plan": { "specs": [{ "kind": "Mislabelling", "percent": 30.0 }] },
            "scale": "Tiny",
            "repetitions": 1,
            "seed": 0
        }]"#;
        let cells: Vec<ExperimentConfig> = tdfm::json::from_str(json).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].technique, TechniqueKind::LabelSmoothing);
    }
}
