#![forbid(unsafe_code)]
//! # tdfm
//!
//! A from-scratch Rust reproduction of **"The Fault in Our Data Stars:
//! Studying Mitigation Techniques against Faulty Training Data in Machine
//! Learning Applications"** (Chan, Gujarati, Pattabiraman,
//! Gopalakrishnan — DSN 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`tensor`] — pure-Rust CPU tensors, convolution/matmul kernels, and a
//!   scoped-thread parallel runtime.
//! * [`nn`] — layers, losses, optimisers, the seven-model zoo of Table III,
//!   and the training loop.
//! * [`data`] — synthetic stand-ins for CIFAR-10, GTSRB and Pneumonia that
//!   preserve the properties the paper's findings depend on.
//! * [`inject`] — the TF-DM-equivalent fault injector (mislabelling,
//!   repetition, removal).
//! * [`survey`] — Table I's candidate techniques and selection criteria.
//! * [`json`] — the dependency-free JSON reader/writer every result file
//!   goes through.
//! * [`lint`] — the project's own static analyzer (`tdfm lint`): token-level
//!   rules that enforce the NaN-propagation, zero-alloc and determinism
//!   invariants the kernels rely on.
//! * [`obs`] — zero-dependency structured tracing, metrics and run
//!   manifests (`TDFM_LOG`, `TDFM_TRACE`, `tdfm report`).
//! * [`core`] — the five TDFM techniques, the accuracy-delta metric, the
//!   experiment runner and the overhead study.
//! * [`bench`] — the harness behind every committed result, drift
//!   comparison, and the SVG figure pipeline (`tdfm figures`).
//!
//! # Quickstart
//!
//! Inject 30% mislabelling into a synthetic GTSRB and compare the baseline
//! against label smoothing:
//!
//! ```no_run
//! use tdfm::core::{ExperimentConfig, Runner, TechniqueKind};
//! use tdfm::data::{DatasetKind, Scale};
//! use tdfm::inject::{FaultKind, FaultPlan};
//! use tdfm::nn::models::ModelKind;
//!
//! let runner = Runner::new();
//! for technique in [TechniqueKind::Baseline, TechniqueKind::LabelSmoothing] {
//!     let result = runner.run(&ExperimentConfig {
//!         dataset: DatasetKind::Gtsrb,
//!         model: ModelKind::ConvNet,
//!         technique,
//!         fault_plan: FaultPlan::single(FaultKind::Mislabelling, 30.0),
//!         scale: Scale::Smoke,
//!         repetitions: 3,
//!         seed: 0,
//!     });
//!     println!("{technique}: AD {}", result.ad);
//! }
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use tdfm_bench as bench;
pub use tdfm_core as core;
pub use tdfm_data as data;
pub use tdfm_inject as inject;
pub use tdfm_json as json;
pub use tdfm_lint as lint;
pub use tdfm_nn as nn;
pub use tdfm_obs as obs;
pub use tdfm_survey as survey;
pub use tdfm_tensor as tensor;
