//! Null encoding laundering non-finite floats: the `else` arm turns a NaN
//! loss or a bit-flipped Inf weight into JSON `null`, so the results file
//! looks merely sparse instead of poisoned.

pub fn write_float(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}
