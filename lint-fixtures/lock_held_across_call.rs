//! A mutex guard held across a call back into workspace code: every other
//! worker queues on the lock for the whole span build.

pub fn flush(state: &Mutex<Vec<u64>>) {
    let guard = state.lock().expect("sink poisoned");
    let span = build_span(guard[0]);
    drop(guard);
    emit(span);
}

fn build_span(d: u64) -> u64 {
    d
}

fn emit(_s: u64) {}
