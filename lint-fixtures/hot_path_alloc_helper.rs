//! Reached from `hot_path_alloc_caller.rs`: the allocation here is
//! charged to the kernel's zero-allocation budget, two hops away.

pub fn pack_input(xs: &mut [f32]) {
    let scratch = buffer(xs.len());
    let _ = scratch;
}

fn buffer(n: usize) -> Vec<f32> {
    vec![0.0; n]
}
