//! Float max laundering NaN: `f32::max(NaN, 0.0)` returns `0.0`, so a
//! poisoned activation leaves this "ReLU" looking healthy.

pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

pub fn row_max(row: &[f32]) -> f32 {
    row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x))
}
