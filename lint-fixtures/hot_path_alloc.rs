//! Heap allocation inside a "kernel": the scratch arena (PR 3) exists so
//! the steady-state training step allocates nothing.

pub fn kernel(xs: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(xs.len());
    out.extend(xs.iter().map(|x| x * 2.0));
    out
}
