//! A scattered `env::var` read: the documented read-once sites cache one
//! OnceLock value per variable so concurrent readers cannot drift.

pub fn threads() -> usize {
    std::env::var("TDFM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
