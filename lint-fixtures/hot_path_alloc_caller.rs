//! A "kernel" whose only allocation is two calls away: the call graph
//! carries the zero-allocation obligation into the helper file.

pub fn kernel(xs: &mut [f32]) {
    pack_input(xs);
}
