//! `partial_cmp` comparators panic or misorder on NaN; rankings must use
//! `total_cmp`.

pub fn rank_scores(scores: &mut [f32]) {
    use std::cmp::Ordering;
    scores.sort_by(|a, b| b.partial_cmp(a).unwrap_or(Ordering::Equal));
}
