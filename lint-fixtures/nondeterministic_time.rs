//! Wall-clock reads outside the allowlisted timing modules leak
//! nondeterminism into golden outputs that `normalize_timings` cannot
//! strip.

pub fn jittered_seed() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
