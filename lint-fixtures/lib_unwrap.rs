//! Bare unwrap and a lazy expect: library panics must name the violated
//! invariant (repo convention since PR 1's non-finite-loss work).

pub fn read_len(path: &str) -> usize {
    let text = std::fs::read_to_string(path).unwrap();
    let first = text.lines().next().expect("no lines");
    first.len()
}
