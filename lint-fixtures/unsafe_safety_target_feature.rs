//! `#[target_feature]` kernels: the SAFETY contract belongs above the
//! attribute stack, and the rule must accept that placement — while still
//! flagging a kernel that ships with no contract at all.

/// SAFETY: callers must verify AVX2 support via `is_x86_feature_detected!`
/// before taking this path; lane loads stay within `x.len()`.
#[target_feature(enable = "avx2")]
pub unsafe fn documented_kernel(x: &mut [f32]) {
    for v in x {
        *v *= 2.0;
    }
}

#[target_feature(enable = "avx2")]
pub unsafe fn undocumented_kernel(x: &mut [f32]) {
    for v in x {
        *v *= 2.0;
    }
}
