//! An `unsafe` block with no `// SAFETY:` comment: the contract the
//! caller is relying on is invisible to the reviewer.

pub fn first_byte(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}
