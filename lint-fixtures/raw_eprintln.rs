//! A raw stderr write in library code: it bypasses the structured sink,
//! so `TDFM_LOG` cannot silence it and `TDFM_TRACE` never records it.

pub fn warn_about(path: &str) {
    eprintln!("cannot read {path}");
}
