//! Summing floats straight out of a `HashMap`: float addition is not
//! associative, so hash order changes the total between runs.

pub fn total_loss(losses: &HashMap<u32, f32>) -> f32 {
    losses.values().sum::<f32>()
}
