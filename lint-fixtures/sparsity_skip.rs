//! The seed GEMM's sparsity "optimisation", verbatim: skipping the inner
//! loop when `a_ip == 0.0` turns `0 * NaN` (IEEE: NaN) into an untouched
//! zero, erasing injected faults. PR 3 deleted this; the lint keeps it out.

pub fn gemm_row(a: &[f32], b: &[f32], c: &mut [f32], n: usize) {
    for (p, &a_ip) in a.iter().enumerate() {
        if a_ip == 0.0 {
            continue;
        }
        for j in 0..n {
            c[j] += a_ip * b[p * n + j];
        }
    }
}
