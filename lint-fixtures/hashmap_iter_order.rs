//! Hash iteration order leaking into emitted bytes: a per-class report
//! built by walking a `HashMap` straight into the output string.

pub fn report(counts: &HashMap<String, u32>) -> String {
    let mut out = String::new();
    for (k, v) in counts.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
