//! A spawned worker whose handle is dropped on the floor: the process can
//! exit (or the round can end) while the thread still runs.

pub fn fan_out(n: usize) {
    for w in 0..n {
        std::thread::spawn(move || work(w));
    }
}

fn work(_w: usize) {}
