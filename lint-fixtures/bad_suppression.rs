//! A suppression without a reason: the lint rejects it (bad-suppression)
//! and still reports the underlying finding.

pub fn relu(x: f32) -> f32 {
    // tdfm-lint: allow(nan-laundering)
    x.max(0.0)
}
