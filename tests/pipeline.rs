//! End-to-end integration tests: every technique trains on fault-injected
//! data and produces valid predictions, deterministically.

use tdfm::core::{ExperimentConfig, Runner, TechniqueKind};
use tdfm::data::{DatasetKind, Scale};
use tdfm::inject::{FaultKind, FaultPlan};
use tdfm::nn::models::ModelKind;

fn config(technique: TechniqueKind) -> ExperimentConfig {
    ExperimentConfig {
        dataset: DatasetKind::Cifar10,
        model: ModelKind::ConvNet,
        technique,
        fault_plan: FaultPlan::single(FaultKind::Mislabelling, 30.0),
        scale: Scale::Tiny,
        repetitions: 1,
        seed: 11,
    }
}

#[test]
fn every_technique_runs_end_to_end() {
    let runner = Runner::new();
    for technique in TechniqueKind::ALL {
        let result = runner.run(&config(technique));
        assert!(
            (0.0..=1.0).contains(&result.ad.mean),
            "{technique}: AD {}",
            result.ad.mean
        );
        assert!(
            result.faulty_accuracy.mean > 0.05,
            "{technique}: accuracy collapsed to {}",
            result.faulty_accuracy.mean
        );
        assert_eq!(result.repetitions.len(), 1);
    }
}

#[test]
fn every_fault_kind_runs_end_to_end() {
    let runner = Runner::new();
    for fault in FaultKind::ALL {
        let result = runner.run(&ExperimentConfig {
            fault_plan: FaultPlan::single(fault, 50.0),
            ..config(TechniqueKind::Baseline)
        });
        assert!((0.0..=1.0).contains(&result.ad.mean), "{fault}");
    }
}

#[test]
fn combined_faults_run_end_to_end() {
    let runner = Runner::new();
    let plan = FaultPlan::single(FaultKind::Mislabelling, 20.0)
        .and(FaultKind::Removal, 20.0)
        .and(FaultKind::Repetition, 20.0);
    let result = runner.run(&ExperimentConfig {
        fault_plan: plan,
        ..config(TechniqueKind::Baseline)
    });
    assert!((0.0..=1.0).contains(&result.ad.mean));
}

#[test]
fn experiments_are_reproducible() {
    let runner = Runner::new();
    let a = runner.run(&config(TechniqueKind::LabelSmoothing));
    let b = runner.run(&config(TechniqueKind::LabelSmoothing));
    assert_eq!(a.ad.mean, b.ad.mean);
    assert_eq!(a.faulty_accuracy.mean, b.faulty_accuracy.mean);
    assert_eq!(a.golden_accuracy.mean, b.golden_accuracy.mean);
}

#[test]
fn different_seeds_change_outcomes() {
    let runner = Runner::new();
    let a = runner.run(&config(TechniqueKind::Baseline));
    let b = runner.run(&ExperimentConfig {
        seed: 12,
        ..config(TechniqueKind::Baseline)
    });
    // Different data draws and initialisations: byte-identical results
    // would indicate a seeding bug.
    assert!(
        a.faulty_accuracy.mean != b.faulty_accuracy.mean || a.ad.mean != b.ad.mean,
        "distinct seeds produced identical results"
    );
}

#[test]
fn every_model_trains_on_every_dataset() {
    let runner = Runner::new();
    for model in ModelKind::ALL {
        for dataset in DatasetKind::ALL {
            let result = runner.run(&ExperimentConfig {
                dataset,
                model,
                technique: TechniqueKind::Baseline,
                fault_plan: FaultPlan::none(),
                scale: Scale::Tiny,
                repetitions: 1,
                seed: 3,
            });
            assert!(
                result.faulty_accuracy.mean > 0.05,
                "{model:?} on {dataset}: accuracy {}",
                result.faulty_accuracy.mean
            );
        }
    }
}
