//! Qualitative reproduction checks at smoke scale: the headline *shapes*
//! of the paper's findings must hold. These are slower than the pipeline
//! tests (tens of seconds) but still CI-sized.

use tdfm::core::{ExperimentConfig, Runner, TechniqueKind};
use tdfm::data::{DatasetKind, Scale};
use tdfm::inject::{FaultKind, FaultPlan};
use tdfm::nn::models::ModelKind;

fn smoke(technique: TechniqueKind, fault: FaultKind, percent: f32) -> ExperimentConfig {
    ExperimentConfig {
        dataset: DatasetKind::Gtsrb,
        model: ModelKind::ConvNet,
        technique,
        fault_plan: FaultPlan::single(fault, percent),
        scale: Scale::Smoke,
        repetitions: 2,
        seed: 21,
    }
}

/// Section IV-B: baseline AD grows with the mislabelling amount.
#[test]
fn mislabelling_dose_response() {
    let runner = Runner::new();
    let low = runner.run(&smoke(
        TechniqueKind::Baseline,
        FaultKind::Mislabelling,
        10.0,
    ));
    let high = runner.run(&smoke(
        TechniqueKind::Baseline,
        FaultKind::Mislabelling,
        50.0,
    ));
    assert!(
        high.ad.mean > low.ad.mean,
        "AD should grow with fault amount: 10% -> {}, 50% -> {}",
        low.ad.mean,
        high.ad.mean
    );
}

/// Section IV-C: removal faults are far milder than mislabelling.
#[test]
fn removal_is_milder_than_mislabelling() {
    let runner = Runner::new();
    let mis = runner.run(&smoke(
        TechniqueKind::Baseline,
        FaultKind::Mislabelling,
        50.0,
    ));
    let rem = runner.run(&smoke(TechniqueKind::Baseline, FaultKind::Removal, 50.0));
    assert!(
        rem.ad.mean < mis.ad.mean,
        "removal AD {} should be below mislabelling AD {}",
        rem.ad.mean,
        mis.ad.mean
    );
}

/// Observation 3: the ensemble beats the unprotected baseline under heavy
/// mislabelling.
#[test]
fn ensemble_beats_baseline_under_mislabelling() {
    let runner = Runner::new();
    let base = runner.run(&smoke(
        TechniqueKind::Baseline,
        FaultKind::Mislabelling,
        50.0,
    ));
    let ens = runner.run(&smoke(
        TechniqueKind::Ensemble,
        FaultKind::Mislabelling,
        50.0,
    ));
    assert!(
        ens.ad.mean < base.ad.mean,
        "ensemble AD {} should be below baseline AD {}",
        ens.ad.mean,
        base.ad.mean
    );
}

/// Section IV-D: mislabelling hurts the cluttered CIFAR-10 analogue more
/// than the focused GTSRB analogue.
#[test]
fn cifar_is_less_resilient_than_gtsrb() {
    let runner = Runner::new();
    let gtsrb = runner.run(&smoke(
        TechniqueKind::Baseline,
        FaultKind::Mislabelling,
        30.0,
    ));
    let cifar = runner.run(&ExperimentConfig {
        dataset: DatasetKind::Cifar10,
        ..smoke(TechniqueKind::Baseline, FaultKind::Mislabelling, 30.0)
    });
    assert!(
        cifar.ad.mean > gtsrb.ad.mean,
        "CIFAR AD {} should exceed GTSRB AD {}",
        cifar.ad.mean,
        gtsrb.ad.mean
    );
}

/// Section IV-A: golden accuracy is respectable on every dataset for the
/// study's anchor model.
#[test]
fn golden_models_learn_all_datasets() {
    let runner = Runner::new();
    for dataset in DatasetKind::ALL {
        let result = runner.run(&ExperimentConfig {
            dataset,
            model: ModelKind::ConvNet,
            technique: TechniqueKind::Baseline,
            fault_plan: FaultPlan::none(),
            scale: Scale::Smoke,
            repetitions: 1,
            seed: 21,
        });
        assert!(
            result.golden_accuracy.mean > 0.6,
            "{dataset}: golden accuracy {}",
            result.golden_accuracy.mean
        );
    }
}
