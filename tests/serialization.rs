//! Integration test: checkpointing trained models to JSON and restoring
//! them reproduces the exact experiment outcome.

use tdfm::core::technique::{Baseline, Mitigation, TrainContext};
use tdfm::core::FittedModel;
use tdfm::data::{DatasetKind, Scale};
use tdfm::nn::models::ModelKind;
use tdfm::nn::serialize::SavedModel;

#[test]
fn golden_model_checkpoint_round_trips_through_disk() {
    let data = DatasetKind::Pneumonia.generate(Scale::Tiny, 17);
    let mut ctx = TrainContext::new(Scale::Tiny, 17);
    ctx.tune_for(data.train.len());
    let fitted = Baseline.fit(ModelKind::ConvNet, &data.train, &ctx);
    let FittedModel::Single(mut net) = fitted else {
        panic!("baseline must produce a single network");
    };
    let before = net.predict(data.test.images(), 32);

    let cfg = ctx.model_config(&data.train);
    let saved = SavedModel::capture(ModelKind::ConvNet, cfg, &mut net);
    let path = std::env::temp_dir().join("tdfm-golden-checkpoint.json");
    std::fs::write(&path, saved.to_json()).unwrap();

    let loaded = SavedModel::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let mut restored = loaded.restore().unwrap();
    assert_eq!(restored.predict(data.test.images(), 32), before);
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoints_are_portable_across_batch_sizes() {
    let data = DatasetKind::Cifar10.generate(Scale::Tiny, 18);
    let mut ctx = TrainContext::new(Scale::Tiny, 18);
    ctx.tune_for(data.train.len());
    let fitted = Baseline.fit(ModelKind::MobileNet, &data.train, &ctx);
    let FittedModel::Single(mut net) = fitted else {
        panic!("baseline must produce a single network");
    };
    let cfg = ctx.model_config(&data.train);
    let saved = SavedModel::capture(ModelKind::MobileNet, cfg, &mut net);
    let mut restored = saved.restore().unwrap();
    // Different inference batch sizes may not change predictions.
    assert_eq!(
        restored.predict(data.test.images(), 7),
        net.predict(data.test.images(), 64)
    );
}
