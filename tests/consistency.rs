//! Cross-crate consistency: the survey's representatives line up with the
//! implemented techniques, registries match the paper's tables, and the
//! injector composes correctly with dataset generation.

use tdfm::core::TechniqueKind;
use tdfm::data::{DatasetKind, Scale};
use tdfm::inject::{FaultKind, FaultPlan, Injector};
use tdfm::nn::models::ModelKind;
use tdfm::survey::{catalog, select_representatives, Approach};

#[test]
fn survey_representatives_cover_all_implemented_techniques() {
    let cat = catalog();
    let reps = select_representatives(&cat);
    // Five approaches -> five representatives -> five TechniqueKind
    // variants beyond the baseline.
    assert_eq!(reps.len(), TechniqueKind::ALL.len() - 1);
    let approach_for = |t: TechniqueKind| match t {
        // Neither the unprotected baseline nor fault-aware training (a
        // model-fault mitigation, beyond the paper's data-fault survey)
        // maps to a surveyed approach.
        TechniqueKind::Baseline | TechniqueKind::FaultAwareTraining => None,
        TechniqueKind::LabelSmoothing => Some(Approach::LabelSmoothing),
        TechniqueKind::LabelCorrection => Some(Approach::LabelCorrection),
        TechniqueKind::RobustLoss => Some(Approach::RobustLoss),
        TechniqueKind::KnowledgeDistillation => Some(Approach::KnowledgeDistillation),
        TechniqueKind::Ensemble => Some(Approach::Ensemble),
    };
    for kind in TechniqueKind::ALL {
        if let Some(approach) = approach_for(kind) {
            assert!(
                reps.iter().any(|t| t.approach == approach),
                "{kind} has no survey representative"
            );
        }
    }
}

#[test]
fn dataset_registry_matches_paper_table_ii() {
    assert_eq!(DatasetKind::ALL.len(), 3);
    assert_eq!(DatasetKind::Cifar10.classes(), 10);
    assert_eq!(DatasetKind::Gtsrb.classes(), 43);
    assert_eq!(DatasetKind::Pneumonia.classes(), 2);
    // The generated data agrees with the registry.
    for kind in DatasetKind::ALL {
        let tt = kind.generate(Scale::Tiny, 0);
        assert_eq!(tt.train.classes(), kind.classes());
        assert_eq!(tt.train.len(), kind.train_size(Scale::Tiny));
        assert_eq!(tt.test.len(), kind.test_size(Scale::Tiny));
    }
}

#[test]
fn model_registry_matches_paper_table_iii() {
    assert_eq!(ModelKind::ALL.len(), 7);
    let names: Vec<&str> = ModelKind::ALL.iter().map(|m| m.name()).collect();
    for expected in [
        "ConvNet",
        "DeconvNet",
        "VGG11",
        "VGG16",
        "ResNet18",
        "ResNet50",
        "MobileNet",
    ] {
        assert!(names.contains(&expected), "missing {expected}");
    }
}

#[test]
fn injector_composes_with_every_dataset() {
    let plan = FaultPlan::single(FaultKind::Mislabelling, 25.0)
        .and(FaultKind::Repetition, 10.0)
        .and(FaultKind::Removal, 10.0);
    for kind in DatasetKind::ALL {
        let tt = kind.generate(Scale::Tiny, 5);
        let before = tt.train.len();
        let (faulty, report) = Injector::new(5).apply(&tt.train, &plan);
        assert_eq!(report.before, before, "{kind}");
        assert_eq!(report.after, faulty.len(), "{kind}");
        assert_eq!(faulty.classes(), tt.train.classes(), "{kind}");
        // Mislabelled count is exact.
        assert_eq!(
            report.mislabelled,
            (0.25f32 * before as f32).round() as usize,
            "{kind}"
        );
    }
}

#[test]
fn fault_labels_render_for_reporting() {
    let plan = FaultPlan::single(FaultKind::Mislabelling, 30.0).and(FaultKind::Removal, 10.0);
    assert_eq!(plan.label(), "Mislabelling 30% + Removal 10%");
    assert_eq!(FaultPlan::none().label(), "clean");
}
